(** One scheduled operation of a simulated pipeline execution. *)

type kind =
  | Receive  (** input transfer into the interval (paid on the link) *)
  | Compute  (** the interval's computation *)
  | Send     (** output transfer out of the interval *)

type t = {
  kind : kind;
  interval : int; (** interval index [j] (0-based) *)
  proc : int;     (** processor executing the operation *)
  dataset : int;  (** dataset number (0-based) *)
  start : float;
  finish : float;
}

val duration : t -> float
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

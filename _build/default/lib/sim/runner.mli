(** Operational simulator of a mapped pipeline.

    Executes a mapping on a simulated platform, dataset by dataset, and
    produces the full operation {!Trace}. Two contention models:

    {ul
    {- {!One_port_no_overlap} — the paper's model: each processor is a
       single resource executing, per dataset, {e receive, compute, send}
       strictly in sequence; a transfer is a rendezvous engaging the
       sender's and the receiver's (single) port for [δ/b] time. The
       steady-state inter-completion time equals equation (1) and the
       first dataset's response time equals equation (2) — the property
       checked by {!Validate} and the test suite.}
    {- {!Multi_port_overlap} — an ablation: independent input port, CPU
       and output port per processor, so communication overlaps
       computation; the steady-state period drops towards
       [max(in, comp, out)] per interval. Quantifies how conservative the
       paper's one-port/no-overlap assumption is.}}

    Transfers of size 0 are executed as zero-duration rendezvous (they
    still synchronise sender and receiver). Works on any platform class:
    boundary bandwidths follow {!Pipeline_model.Metrics}' conventions. *)

open Pipeline_model

type mode =
  | One_port_no_overlap
  | Multi_port_overlap

val run : ?mode:mode -> Instance.t -> Mapping.t -> datasets:int -> Trace.t
(** [run inst mapping ~datasets] simulates the processing of [datasets]
    consecutive data sets (all available at time 0; the source and sink
    are never contended). Default mode: {!One_port_no_overlap}.
    Raises [Invalid_argument] when [datasets < 1] or the mapping does not
    fit the instance. *)

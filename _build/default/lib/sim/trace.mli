(** Execution trace of a simulated run and its derived measurements. *)

type t

val make :
  datasets:int -> intervals:int -> procs:int array -> Op.t list -> t
(** [procs.(j)] is the processor of interval [j]; the operations may be
    given in any order. Raises [Invalid_argument] when [datasets < 1] or
    an op refers to an unknown interval/dataset. *)

val datasets : t -> int
val intervals : t -> int
val ops : t -> Op.t list
(** Operations sorted by start time (stable). *)

val makespan : t -> float
(** Finish time of the last operation. *)

val input_start : t -> int -> float
(** Start of the first operation of a dataset (its initial input
    transfer). *)

val output_completion : t -> int -> float
(** Finish of the final output transfer of a dataset. *)

val latency : t -> int -> float
(** [output_completion - input_start] of a dataset. *)

val max_latency : t -> float
(** The paper's latency: the worst dataset response time. *)

val steady_period : t -> float
(** Asymptotic inter-completion time: the slope of output completions
    over the second half of the run (requires at least 4 datasets for a
    meaningful estimate; falls back to the overall average otherwise). *)

val busy_time : t -> proc:int -> float
(** Total time the processor spends in operations. *)

val utilisation : t -> proc:int -> float
(** [busy_time / makespan]; [0.] for processors outside the mapping. *)

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart, one row per enrolled processor: ['r'] receive,
    ['c'] compute, ['s'] send, ['.'] idle. Width defaults to 100
    columns. *)

val to_csv : t -> string
(** One line per operation: [kind,interval,proc,dataset,start,finish]. *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON (load via chrome://tracing or Perfetto):
    complete events (["ph":"X"]), one track per processor, one simulated
    time unit rendered as one microsecond. *)

type t = {
  datasets : int;
  intervals : int;
  procs : int array;
  ops : Op.t array; (* sorted by start time *)
  input_starts : float array;
  output_completions : float array;
}

let make ~datasets ~intervals ~procs ops =
  if datasets < 1 then invalid_arg "Trace.make: datasets must be >= 1";
  if Array.length procs <> intervals then
    invalid_arg "Trace.make: procs must list one processor per interval";
  let arr = Array.of_list ops in
  Array.iter
    (fun (op : Op.t) ->
      if op.Op.interval < 0 || op.Op.interval >= intervals then
        invalid_arg "Trace.make: op with unknown interval";
      if op.Op.dataset < 0 || op.Op.dataset >= datasets then
        invalid_arg "Trace.make: op with unknown dataset")
    arr;
  Array.stable_sort (fun (a : Op.t) b -> compare a.Op.start b.Op.start) arr;
  let input_starts = Array.make datasets infinity in
  let output_completions = Array.make datasets neg_infinity in
  Array.iter
    (fun (op : Op.t) ->
      let d = op.Op.dataset in
      input_starts.(d) <- Float.min input_starts.(d) op.Op.start;
      output_completions.(d) <- Float.max output_completions.(d) op.Op.finish)
    arr;
  { datasets; intervals; procs; ops = arr; input_starts; output_completions }

let datasets t = t.datasets
let intervals t = t.intervals
let ops t = Array.to_list t.ops

let makespan t = Array.fold_left (fun m (op : Op.t) -> Float.max m op.Op.finish) 0. t.ops

let check_dataset t d =
  if d < 0 || d >= t.datasets then invalid_arg "Trace: dataset out of range"

let input_start t d =
  check_dataset t d;
  t.input_starts.(d)

let output_completion t d =
  check_dataset t d;
  t.output_completions.(d)

let latency t d = output_completion t d -. input_start t d

let max_latency t =
  let worst = ref neg_infinity in
  for d = 0 to t.datasets - 1 do
    worst := Float.max !worst (latency t d)
  done;
  !worst

let steady_period t =
  let k = t.datasets in
  if k < 2 then 0.
  else if k < 4 then
    (t.output_completions.(k - 1) -. t.output_completions.(0))
    /. float_of_int (k - 1)
  else
    let half = k / 2 in
    (t.output_completions.(k - 1) -. t.output_completions.(half))
    /. float_of_int (k - 1 - half)

let busy_time t ~proc =
  Array.fold_left
    (fun acc (op : Op.t) ->
      if op.Op.proc = proc then acc +. Op.duration op else acc)
    0. t.ops

let utilisation t ~proc =
  let total = makespan t in
  if total <= 0. then 0. else busy_time t ~proc /. total

let gantt ?(width = 100) t =
  let total = makespan t in
  if total <= 0. then "(empty trace)"
  else begin
    let scale x = int_of_float (x /. total *. float_of_int (width - 1)) in
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun j proc ->
        let row = Bytes.make width '.' in
        Array.iter
          (fun (op : Op.t) ->
            if op.Op.interval = j then begin
              let c =
                match op.Op.kind with
                | Op.Receive -> 'r'
                | Op.Compute -> 'c'
                | Op.Send -> 's'
              in
              for x = scale op.Op.start to min (width - 1) (scale op.Op.finish) do
                Bytes.set row x c
              done
            end)
          t.ops;
        Buffer.add_string buf (Printf.sprintf "P%-3d |%s|\n" proc (Bytes.to_string row)))
      t.procs;
    Buffer.add_string buf
      (Printf.sprintf "%5s 0%*s%.2f\n" "" (width - 2) "" total);
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,interval,proc,dataset,start,finish\n";
  Array.iter
    (fun (op : Op.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%g,%g\n"
           (Op.kind_to_string op.Op.kind)
           op.Op.interval op.Op.proc op.Op.dataset op.Op.start op.Op.finish))
    t.ops;
  Buffer.contents buf

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  Array.iteri
    (fun i (op : Op.t) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s ds%d\",\"cat\":\"iv%d\",\"ph\":\"X\",\"ts\":%g,\"dur\":%g,\"pid\":0,\"tid\":%d}"
           (Op.kind_to_string op.Op.kind)
           op.Op.dataset op.Op.interval op.Op.start (Op.duration op) op.Op.proc))
    t.ops;
  Buffer.add_string buf "]";
  Buffer.contents buf

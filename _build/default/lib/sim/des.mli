(** A small discrete-event simulation kernel.

    Callback-style: handlers schedule further events; {!run} drains the
    event queue in time order (FIFO on ties, so runs are deterministic).
    {!Resource} provides unary FIFO servers — the one-port processors of
    the stochastic pipeline simulator ({!Workload_sim}) are built on it. *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run the handler [delay ≥ 0] time units from now. Raises
    [Invalid_argument] on negative or non-finite delays. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val run : ?until:float -> t -> unit
(** Process events until the queue drains (or past [until]). Events at
    the cut-off time are still processed. *)

val pending : t -> int
(** Events still queued (useful in tests). A cancelled event still
    occupies its queue slot until its time comes (it then fires as a
    no-op), so it keeps counting here. *)

type handle
(** Identifies a cancellable event (see {!schedule_cancellable}). *)

val schedule_cancellable : t -> delay:float -> (t -> unit) -> handle
(** Like {!schedule}, but the returned handle can revoke the event before
    it fires — the fault simulator uses this to kill the in-flight
    computation of a crashed processor. Same delay validation as
    {!schedule}. *)

val cancel : t -> handle -> unit
(** Revoke the event. The handler will not run; the queue slot fires as a
    no-op at the original time, preserving the deterministic FIFO order
    of the surviving events. Cancelling twice, or after the event fired,
    is a no-op. *)

val cancelled : handle -> bool
(** True once {!cancel} was called on the handle. *)

(** Unary resource with a FIFO wait queue. *)
module Resource : sig
  type nonrec des = t
  type t

  val create : des -> t

  val acquire : t -> (des -> unit) -> unit
  (** Call the continuation (at the current time, via a zero-delay event)
      once the resource is granted; waiters are served in request order. *)

  val release : t -> unit
  (** Hand the resource to the next waiter (or mark it free). Raises
      [Invalid_argument] when the resource is not held. *)

  val held : t -> bool
  val queue_length : t -> int
end

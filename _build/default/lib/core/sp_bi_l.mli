(** H5 — "Sp bi L": splitting, bi-criteria, fixed latency (§4.2).

    Variant of H4 selecting, at each step, the split that minimises
    [max_{i∈{j,j'}} Δlatency/Δperiod(i)] while the latency budget is not
    exceeded. *)

val solve : Pipeline_model.Instance.t -> latency:float -> Solution.t option

(** H2a — "3-Explo mono": 3-exploration, mono-criterion, fixed period
    (§4.1).

    Split the bottleneck interval in three, keeping one part on its
    processor and handing the other two to the next pair of fastest
    unused processors; test all cut pairs and part-to-processor
    permutations and keep the one minimising
    [max(period(j), period(j'), period(j''))]. Strictly 3-way: when the
    bottleneck interval has fewer than 3 stages or fewer than two
    processors remain, the heuristic is stuck (see
    {!Explo_fallback} for the extension lifting this limitation). *)

val solve : Pipeline_model.Instance.t -> period:float -> Solution.t option

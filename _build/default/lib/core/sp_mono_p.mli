(** H1 — "Sp mono P": splitting, mono-criterion, fixed period (§4.1).

    Repeatedly split the bottleneck interval in two, giving one half to
    the next fastest unused processor, choosing the cut and orientation
    that minimise [max(period(j), period(j'))], while the prescribed
    period is not reached. *)

val solve : Pipeline_model.Instance.t -> period:float -> Solution.t option
(** Minimised latency under the period threshold; [None] on failure. *)

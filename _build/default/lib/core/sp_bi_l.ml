let solve inst ~latency =
  Loop.minimise_period_under_latency ~gen:Loop.gen_two ~select:Loop.select_bi
    inst ~latency

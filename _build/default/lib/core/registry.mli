(** Uniform access to the six heuristics — the experiment campaign, the
    CLI and the benches all iterate over {!all}. *)

open Pipeline_model

type kind =
  | Period_fixed   (** the threshold is a period; the output minimises latency *)
  | Latency_fixed  (** the threshold is a latency; the output minimises period *)

type info = {
  id : string;          (** stable machine name, e.g. ["h1-sp-mono-p"] *)
  paper_name : string;  (** legend name used in the paper's plots *)
  table_name : string;  (** row name in the paper's Table 1 (H1 … H6) *)
  kind : kind;
  solve : Instance.t -> threshold:float -> Solution.t option;
}

val all : info list
(** The six heuristics in Table 1 order:
    H1 Sp mono P, H2 3-Explo mono, H3 3-Explo bi, H4 Sp bi P,
    H5 Sp mono L, H6 Sp bi L. *)

val find : string -> info option
(** Look up by [id], [table_name] (case-insensitive) or [paper_name]. *)

val period_fixed : info list
val latency_fixed : info list

val extended : info list
(** Extensions beyond the paper, for the ablation benches: the
    3-exploration heuristics with a 2-way-split fallback
    (["h2x-3explo-mono-fb"], ["h3x-3explo-bi-fb"]). Not part of {!all}. *)

val with_extensions : info list
(** [all @ extended]. *)

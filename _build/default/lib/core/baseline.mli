(** Baseline mapping strategies.

    None of these is from the paper; they calibrate the heuristics'
    value. A heuristic that cannot beat a random mapping, or a
    load-balancer that ignores communications, is not earning its
    complexity — the comparison bench (`bench/main.exe --ablation`) and
    the test suite both lean on these. *)

open Pipeline_model

val random : Pipeline_util.Rng.t -> Instance.t -> Solution.t
(** A uniformly random interval count, random cut positions and random
    distinct processors. Valid by construction; terrible on purpose. *)

val balanced_chains : Instance.t -> Solution.t
(** Communication-oblivious load balancing: for every interval count
    [m ≤ min(n, p)], partition the stage weights with the exact
    homogeneous chains-to-chains DP, hand the heaviest interval to the
    fastest of the [m] fastest processors (and so on down), then score
    the mapping with the {e real} cost model and keep the best period.
    This is the natural adaptation of the classic 1D-partitioning
    baseline to different-speed processors. *)

val one_to_one_greedy : Instance.t -> Solution.t option
(** LPT-style: heaviest stage onto the fastest processor, second onto the
    second fastest, etc. [None] when [n > p]. *)

open Pipeline_model
module Rng = Pipeline_util.Rng

let random rng (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  let m = 1 + Rng.int rng (min n p) in
  let cuts =
    if m = 1 then []
    else begin
      let positions = Array.init (n - 1) (fun i -> i + 1) in
      Rng.shuffle rng positions;
      List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
    end
  in
  let procs = Array.to_list (Array.sub (Rng.permutation rng p) 0 m) in
  Solution.of_mapping inst (Mapping.of_cuts ~n ~cuts ~procs)

let balanced_chains (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  let works = Application.works inst.app in
  let prefix = Chains.Prefix.make works in
  let order = Platform.by_decreasing_speed inst.platform in
  let best = ref None in
  for m = 1 to min n p do
    let _, partition = Chains.Dp.solve works ~p:m in
    let k = Chains.Partition.size partition in
    (* Heaviest interval -> fastest processor among the k fastest. *)
    let loads = Chains.Partition.loads prefix partition in
    let by_load = Array.init k Fun.id in
    Array.stable_sort (fun a b -> compare loads.(b) loads.(a)) by_load;
    let procs = Array.make k 0 in
    Array.iteri (fun rank j -> procs.(j) <- order.(rank)) by_load;
    let pairs =
      List.map2
        (fun iv u -> (iv, u))
        (Array.to_list partition) (Array.to_list procs)
    in
    let sol = Solution.of_mapping inst (Mapping.make ~n pairs) in
    match !best with
    | Some b when b.Solution.period <= sol.Solution.period -> ()
    | _ -> best := Some sol
  done;
  Option.get !best

let one_to_one_greedy (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if n > p then None
  else begin
    let order = Platform.by_decreasing_speed inst.platform in
    let stages = Array.init n (fun k -> k + 1) in
    Array.stable_sort
      (fun a b -> compare (Application.work inst.app b) (Application.work inst.app a))
      stages;
    let procs = Array.make n 0 in
    Array.iteri (fun rank k -> procs.(k - 1) <- order.(rank)) stages;
    Some (Solution.of_mapping inst (Mapping.one_to_one ~procs))
  end

(** Result of a bi-criteria mapping heuristic: the mapping together with
    its two objective values. *)

open Pipeline_model

type t = {
  mapping : Mapping.t;
  period : float;   (** equation (1) *)
  latency : float;  (** equation (2) *)
}

val of_mapping : Instance.t -> Mapping.t -> t
(** Evaluate both objectives with {!Pipeline_model.Metrics}. *)

val respects_period : t -> float -> bool
(** [respects_period s p] with a relative tolerance of 1e-9, so a solution
    sitting exactly on the threshold is not rejected by rounding noise. *)

val respects_latency : t -> float -> bool

val pp : Format.formatter -> t -> unit

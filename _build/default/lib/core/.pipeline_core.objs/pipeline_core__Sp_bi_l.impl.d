lib/core/sp_bi_l.ml: Loop

lib/core/solution.ml: Float Format Instance Mapping Metrics Pipeline_model

lib/core/explo_mono.mli: Pipeline_model Solution

lib/core/sp_mono_l.mli: Pipeline_model Solution

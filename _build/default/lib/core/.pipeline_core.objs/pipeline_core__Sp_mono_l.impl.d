lib/core/sp_mono_l.ml: Loop

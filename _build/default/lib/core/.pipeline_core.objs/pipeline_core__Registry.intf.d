lib/core/registry.mli: Instance Pipeline_model Solution

lib/core/sp_bi_l.mli: Pipeline_model Solution

lib/core/registry.ml: Explo_bi Explo_fallback Explo_mono Instance List Pipeline_model Solution Sp_bi_l Sp_bi_p Sp_mono_l Sp_mono_p String

lib/core/split.ml: Application Array Float Instance Interval List Mapping Pipeline_model Platform Solution

lib/core/baseline.ml: Application Array Chains Fun Instance List Mapping Option Pipeline_model Pipeline_util Platform Solution

lib/core/loop.ml: Float List Split

lib/core/explo_mono.ml: Loop

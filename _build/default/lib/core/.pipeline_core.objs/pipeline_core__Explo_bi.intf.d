lib/core/explo_bi.mli: Pipeline_model Solution

lib/core/explo_bi.ml: Loop

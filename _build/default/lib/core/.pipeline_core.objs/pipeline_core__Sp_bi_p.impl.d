lib/core/sp_bi_p.ml: Float Instance Loop Pipeline_model Solution

lib/core/explo_fallback.ml: Loop

lib/core/sp_bi_p.mli: Pipeline_model Solution

lib/core/baseline.mli: Instance Pipeline_model Pipeline_util Solution

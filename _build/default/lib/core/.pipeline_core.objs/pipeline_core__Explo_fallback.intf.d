lib/core/explo_fallback.mli: Pipeline_model Solution

lib/core/solution.mli: Format Instance Mapping Pipeline_model

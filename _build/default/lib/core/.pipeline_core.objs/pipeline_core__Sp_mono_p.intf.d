lib/core/sp_mono_p.mli: Pipeline_model Solution

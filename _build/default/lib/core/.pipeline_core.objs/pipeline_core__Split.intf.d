lib/core/split.mli: Instance Pipeline_model Solution

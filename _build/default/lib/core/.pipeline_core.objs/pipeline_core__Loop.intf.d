lib/core/loop.mli: Instance Pipeline_model Solution Split

lib/core/sp_mono_p.ml: Loop

open Pipeline_model

type kind = Period_fixed | Latency_fixed

type info = {
  id : string;
  paper_name : string;
  table_name : string;
  kind : kind;
  solve : Instance.t -> threshold:float -> Solution.t option;
}

let all =
  [
    {
      id = "h1-sp-mono-p";
      paper_name = "Sp mono, P fix";
      table_name = "H1";
      kind = Period_fixed;
      solve = (fun inst ~threshold -> Sp_mono_p.solve inst ~period:threshold);
    };
    {
      id = "h2-3explo-mono";
      paper_name = "3-Explo mono";
      table_name = "H2";
      kind = Period_fixed;
      solve = (fun inst ~threshold -> Explo_mono.solve inst ~period:threshold);
    };
    {
      id = "h3-3explo-bi";
      paper_name = "3-Explo bi";
      table_name = "H3";
      kind = Period_fixed;
      solve = (fun inst ~threshold -> Explo_bi.solve inst ~period:threshold);
    };
    {
      id = "h4-sp-bi-p";
      paper_name = "Sp bi, P fix";
      table_name = "H4";
      kind = Period_fixed;
      solve = (fun inst ~threshold -> Sp_bi_p.solve inst ~period:threshold);
    };
    {
      id = "h5-sp-mono-l";
      paper_name = "Sp mono, L fix";
      table_name = "H5";
      kind = Latency_fixed;
      solve = (fun inst ~threshold -> Sp_mono_l.solve inst ~latency:threshold);
    };
    {
      id = "h6-sp-bi-l";
      paper_name = "Sp bi, L fix";
      table_name = "H6";
      kind = Latency_fixed;
      solve = (fun inst ~threshold -> Sp_bi_l.solve inst ~latency:threshold);
    };
  ]

let extended =
  [
    {
      id = "h2x-3explo-mono-fb";
      paper_name = "3-Explo mono (+fb)";
      table_name = "H2x";
      kind = Period_fixed;
      solve =
        (fun inst ~threshold -> Explo_fallback.solve_mono inst ~period:threshold);
    };
    {
      id = "h3x-3explo-bi-fb";
      paper_name = "3-Explo bi (+fb)";
      table_name = "H3x";
      kind = Period_fixed;
      solve =
        (fun inst ~threshold -> Explo_fallback.solve_bi inst ~period:threshold);
    };
  ]

let with_extensions = all @ extended

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun info ->
      String.lowercase_ascii info.id = k
      || String.lowercase_ascii info.table_name = k
      || String.lowercase_ascii info.paper_name = k)
    with_extensions

let period_fixed = List.filter (fun i -> i.kind = Period_fixed) all
let latency_fixed = List.filter (fun i -> i.kind = Latency_fixed) all

let solve_mono inst ~period =
  Loop.minimise_latency_under_period ~gen:Loop.gen_three_with_fallback
    ~select:Loop.select_mono inst ~period

let solve_bi inst ~period =
  Loop.minimise_latency_under_period ~gen:Loop.gen_three_with_fallback
    ~select:Loop.select_bi inst ~period

let solve inst ~period =
  Loop.minimise_latency_under_period ~gen:Loop.gen_two ~select:Loop.select_mono
    inst ~period

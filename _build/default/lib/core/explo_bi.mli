(** H2b — "3-Explo bi": 3-exploration, bi-criteria, fixed period (§4.1).

    Same 3-way splitting mechanism as H2a, but the retained candidate
    minimises [max_{i∈{j,j',j''}} Δlatency/Δperiod(i)] — the latency
    price paid per unit of period improvement. *)

val solve : Pipeline_model.Instance.t -> period:float -> Solution.t option

(** Driver loops shared by the heuristics.

    Both paper families follow the same skeleton: start from the
    latency-optimal configuration (everything on the fastest processor)
    and repeatedly split the current bottleneck interval, handing stages
    to the next fastest unused processor(s), until the break condition.

    {ul
    {- {e Period fixed} (H1, H2a, H2b, H3): split while the period exceeds
       the threshold; succeed iff it is reached. The selection rule and an
       optional latency cap (H3) are parameters.}
    {- {e Latency fixed} (H4, H5): split while improving candidates exist
       that keep the latency within the threshold, driving the period as
       low as possible; succeed iff the optimal latency itself respects
       the threshold.}} *)

open Pipeline_model

type gen = Split.t -> j:int -> Split.candidate list
(** Candidate generator for the bottleneck interval [j]. *)

type select = Split.candidate list -> Split.candidate option
(** Retain one candidate of a non-empty filtered list ([None] to stop). *)

val minimise_latency_under_period :
  ?latency_cap:float ->
  gen:gen ->
  select:select ->
  Instance.t ->
  period:float ->
  Solution.t option
(** Splitting loop of the period-fixed family. Candidates whose latency
    exceeds [latency_cap] (default [+∞]) are discarded before selection.
    Returns the final solution when the period threshold is reached,
    [None] otherwise (failure). *)

val minimise_period_under_latency :
  gen:gen -> select:select -> Instance.t -> latency:float -> Solution.t option
(** Splitting loop of the latency-fixed family. [None] when even the
    single-processor optimum violates the latency threshold. *)

val select_mono : select
(** Minimise the largest piece cycle-time ([max(period(j), period(j')) ]
    in the paper); ties broken by smaller latency increase. *)

val select_bi : select
(** Minimise the paper's [max_i Δlatency/Δperiod(i)] ratio; ties broken by
    smaller largest piece cycle-time. *)

val gen_two : gen
(** {!Split.two_split_candidates}. *)

val gen_three : gen
(** {!Split.three_split_candidates}. Pure 3-way exploration, as measured
    in the paper: when the bottleneck interval has fewer than 3 stages or
    fewer than two processors remain, the heuristic is stuck — which is
    why the paper's Table 1 shows much higher failure thresholds for the
    3-exploration heuristics than for the splitting ones. *)

val gen_three_with_fallback : gen
(** {!Split.three_split_candidates}, falling back to 2-way splits when the
    interval is too short or only one processor remains. Not in the
    paper: an extension evaluated by the ablation bench (cf. DESIGN.md,
    interpretation 2). *)

(** Shared machinery of the six splitting heuristics (paper §4).

    Every heuristic maintains the same working state: processors sorted by
    non-increasing speed, a current interval mapping that starts with all
    stages on the fastest processor, and the cycle-time of each enrolled
    processor. A step selects the enrolled processor with the largest
    cycle-time ("largest period" in the paper) and splits its interval,
    handing pieces to the next not-yet-used processor(s) in the speed
    order. Heuristics differ only in how they split (2-way or 3-way) and
    which candidate split they retain (pure period improvement, or the
    latency-per-period-improvement ratio).

    This module generates, for a configuration and a target interval, all
    {e improving} candidates — those whose every piece has a cycle-time
    strictly below the interval's current cycle-time (a non-improving
    piece makes both the period argument and the paper's
    [Δlatency/Δperiod] ratio meaningless, cf. DESIGN.md) — with their
    global period, latency and ratio precomputed in O(1) amortised per
    candidate.

    Restricted to communication-homogeneous platforms (the paper's
    setting): the constructor rejects other platforms. *)

open Pipeline_model

type t
(** A splitting configuration. Immutable: {!apply} returns a new one. *)

type piece = {
  first : int;   (** first stage of the piece (1-based) *)
  last : int;    (** last stage *)
  proc : int;    (** processor assigned *)
  cycle : float; (** its cycle-time under the piece assignment *)
}

type candidate = {
  target : int;            (** index of the split interval *)
  pieces : piece list;     (** replacement, in pipeline order *)
  enrolled : int;          (** new processors consumed from the speed order *)
  max_piece_cycle : float; (** largest piece cycle-time *)
  period : float;          (** global period after the split *)
  latency : float;         (** global latency after the split *)
  dlatency : float;        (** latency increase w.r.t. the current config *)
  ratio : float;           (** [max_i Δlatency/Δperiod(i)] over the pieces *)
}

val initial : Instance.t -> t
(** All stages on the fastest processor. Raises [Invalid_argument] when
    the platform is not communication homogeneous. *)

val instance : t -> Instance.t
val period : t -> float
val latency : t -> float
val intervals : t -> int
(** Number of enrolled processors. *)

val unused : t -> int
(** Processors not yet enrolled. *)

val cycle : t -> int -> float
(** Cycle-time of interval [j] (0-based). *)

val length : t -> int -> int
(** Stage count of interval [j]. *)

val bottleneck : t -> int
(** Interval with the largest cycle-time (first on ties). *)

val two_split_candidates : t -> j:int -> candidate list
(** All improving 2-way splits of interval [j]: every cut position, the
    kept/given halves in both orders, the next unused processor taking the
    given half. Empty when interval [j] is a singleton or no processor is
    left. *)

val three_split_candidates : t -> j:int -> candidate list
(** All improving 3-way splits: every cut pair, processor [j] keeping any
    one of the three parts, the next two unused processors taking the
    other two in both orders. Empty when the interval has fewer than 3
    stages or fewer than 2 processors are left. *)

val apply : t -> candidate -> t
(** Commit a candidate (must have been generated from this configuration). *)

val to_solution : t -> Solution.t
(** Export the current mapping; objectives are recomputed independently
    with {!Pipeline_model.Metrics} as a cross-check. *)

(** Extension (not in the paper): 3-exploration heuristics that fall back
    to a 2-way split when the bottleneck interval has fewer than 3 stages
    or a single unused processor remains.

    The paper's pure 3-exploration gets stuck in exactly those states,
    which is why its Table 1 failure thresholds are so much higher than
    the splitting heuristics'. These variants remove that failure mode at
    no asymptotic cost; the ablation bench quantifies the gain. *)

val solve_mono : Pipeline_model.Instance.t -> period:float -> Solution.t option
(** H2a with fallback. *)

val solve_bi : Pipeline_model.Instance.t -> period:float -> Solution.t option
(** H2b with fallback. *)

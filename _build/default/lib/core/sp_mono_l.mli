(** H4 — "Sp mono L": splitting, mono-criterion, fixed latency (§4.2).

    Same splitting mechanism as H1, but the break condition is the
    latency budget: splits are applied while they keep the latency within
    the threshold, driving the period down as far as possible. *)

val solve : Pipeline_model.Instance.t -> latency:float -> Solution.t option
(** Minimised period under the latency threshold; [None] when even the
    optimal latency exceeds the threshold. *)

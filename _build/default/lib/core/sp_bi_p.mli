(** H3 — "Sp bi P": splitting, bi-criteria, fixed period, with a binary
    search over the authorised latency (§4.1).

    Each trial fixes an authorised latency (between the optimal latency
    and the latency of an unconstrained run) and attempts to reach the
    prescribed period by 2-way splits selected with the
    [Δlatency/Δperiod] ratio, discarding splits that would exceed the
    authorised latency. While trials succeed, the authorised latency is
    reduced — minimising the global latency of the final mapping. *)

val iterations : int
(** Number of bisection steps (25). *)

val solve : Pipeline_model.Instance.t -> period:float -> Solution.t option

let solve inst ~period =
  Loop.minimise_latency_under_period ~gen:Loop.gen_three
    ~select:Loop.select_bi inst ~period

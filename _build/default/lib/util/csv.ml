let dat_of_series series =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf "\n\n";
      Buffer.add_string buf (Printf.sprintf "# %s\n" (Series.label s));
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%g %g\n" x y))
        (Series.points s))
    series;
  Buffer.contents buf

let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_series series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun s ->
      let label = quote (Series.label s) in
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%s,%g,%g\n" label x y))
        (Series.points s))
    series;
  Buffer.contents buf

let csv_of_rows ~header rows =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map quote row));
    Buffer.add_char buf '\n'
  in
  emit header;
  List.iter emit rows;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let to_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

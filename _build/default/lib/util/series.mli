(** Named numeric series — the unit of data behind every figure.

    A series is a list of [(x, y)] points, e.g. (period, latency) pairs for
    one heuristic on one experiment. The campaign produces one series per
    heuristic and per figure; this module carries the bookkeeping: sorting,
    pruning, resampling onto a common grid so that runs on different random
    instances can be averaged point-wise. *)

type t = {
  label : string;      (** legend entry, e.g. ["Sp mono, P fix"] *)
  points : (float * float) list;  (** [(x, y)] pairs *)
}

val make : label:string -> (float * float) list -> t
(** Build a series; points are sorted by [x] (stable for equal [x]). *)

val label : t -> string
val points : t -> (float * float) list
val length : t -> int
val is_empty : t -> bool

val map_y : (float -> float) -> t -> t
(** Transform every ordinate. *)

val filter : (float * float -> bool) -> t -> t

val x_range : t -> (float * float) option
val y_range : t -> (float * float) option
(** Extremes over the points, [None] when empty. *)

val ranges : t list -> ((float * float) * (float * float)) option
(** Combined [((xmin, xmax), (ymin, ymax))] over non-empty series. *)

val interpolate : t -> float -> float option
(** [interpolate s x] linearly interpolates [y] at abscissa [x]; [None]
    outside the series' x-range or when the series is empty. *)

val resample : xs:float list -> t -> t
(** Evaluate the series on the grid [xs] by linear interpolation, dropping
    grid points outside the range. *)

val average : label:string -> t list -> t
(** Point-wise average of series resampled on a common grid spanning the
    intersection of their x-ranges (64 grid points). Series that do not
    cover a given grid point do not contribute there. *)

val uniform_grid : ?points:int -> float -> float -> float list
(** [uniform_grid lo hi] is an inclusive evenly-spaced grid (default 64
    points). *)

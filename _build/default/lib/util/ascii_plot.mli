(** Terminal scatter/line plots.

    The paper's figures are latency-versus-period curves for six heuristics.
    The bench harness renders the same series as ASCII plots so the shape of
    each reproduction can be eyeballed directly in the terminal, next to the
    machine-readable [.dat] files written by {!Csv}. *)

type config = {
  width : int;    (** plot area width in characters (default 72) *)
  height : int;   (** plot area height in rows (default 24) *)
  x_label : string;
  y_label : string;
  title : string;
}

val default : config
(** 72x24 plot with empty labels. *)

val render : ?config:config -> Series.t list -> string
(** [render series] draws all series on a common scale. Each series is
    assigned a marker character ([+ x o * # @ %...] in order) and listed in
    the legend with its label. Returns the multi-line string (no trailing
    newline). Empty input or all-empty series yield a short placeholder
    message. *)

val render_table : Series.t list -> string
(** A textual fallback: the series tabulated side by side on their own
    abscissae (one block per series). Useful in logs where a plot would be
    too coarse. *)

type align = Left | Right | Center

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '

let column_count rows = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows

let normalise cols rows =
  List.map
    (fun r ->
      let missing = cols - List.length r in
      if missing <= 0 then r else r @ List.init missing (fun _ -> ""))
    rows

let widths cols rows =
  let w = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    rows;
  w

let alignment aligns cols =
  Array.init cols (fun i ->
      match List.nth_opt aligns i with
      | Some a -> a
      | None -> if i = 0 then Left else Right)

let render ?(aligns = []) rows =
  match rows with
  | [] -> ""
  | header :: _ ->
    let cols = column_count rows in
    let rows = normalise cols rows in
    let w = widths cols rows in
    let al =
      if aligns = [] then
        alignment (Left :: List.init (max 0 (cols - 1)) (fun _ -> Right)) cols
      else alignment aligns cols
    in
    let line row =
      String.concat " | " (List.mapi (fun i cell -> pad al.(i) w.(i) cell) row)
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf (line (normalise cols [ header ] |> List.hd));
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (String.concat "-+-" (Array.to_list (Array.map (fun n -> String.make n '-') w)));
    Buffer.add_char buf '\n';
    List.iteri
      (fun i row ->
        if i > 0 then (
          Buffer.add_string buf (line row);
          Buffer.add_char buf '\n'))
      rows;
    Buffer.contents buf

let render_markdown rows =
  match rows with
  | [] -> ""
  | header :: body ->
    let cols = column_count rows in
    let rows' = normalise cols (header :: body) in
    let cell_line row = "| " ^ String.concat " | " row ^ " |" in
    let buf = Buffer.create 256 in
    (match rows' with
    | h :: b ->
      Buffer.add_string buf (cell_line h);
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        ("|" ^ String.concat "|" (List.init cols (fun _ -> "---")) ^ "|");
      Buffer.add_char buf '\n';
      List.iter
        (fun row ->
          Buffer.add_string buf (cell_line row);
          Buffer.add_char buf '\n')
        b
    | [] -> ());
    Buffer.contents buf

let float_cell ?(decimals = 2) v =
  if Float.is_nan v then "-"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals v

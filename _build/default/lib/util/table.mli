(** Aligned text tables.

    Used to print Table 1 (failure thresholds) and the EXPERIMENTS.md
    paper-vs-measured summaries. Cells are strings; columns are sized to
    their widest cell; the first row is treated as a header and separated
    by a rule. *)

type align = Left | Right | Center

val render : ?aligns:align list -> string list list -> string
(** [render rows] renders [rows] (first row = header) with columns padded
    to their widest cell, ["|"]-separated, with a dash rule under the
    header. [aligns] gives per-column alignment (default: first column
    [Left], others [Right]; missing entries fall back to [Right]).
    Ragged rows are padded with empty cells. Returns a multi-line string
    with trailing newline. The empty table renders as [""]. *)

val render_markdown : string list list -> string
(** GitHub-flavoured markdown table (header + separator + body), for
    inclusion in EXPERIMENTS.md. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float for a table cell (default 2 decimals); [nan] renders as
    ["-"], infinities as ["inf"/"-inf"]. *)

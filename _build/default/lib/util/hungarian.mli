(** Minimum-cost assignment (Hungarian algorithm with potentials, O(n²m)).

    Substrate for latency-optimal one-to-one mappings: each stage must go
    to a distinct processor and the latency is the sum of per-stage
    costs, which is exactly a rectangular assignment problem. Forbidden
    pairs are encoded as [infinity] cost; the solver reports [None] when
    no finite-cost assignment exists. *)

val solve :
  rows:int -> cols:int -> cost:(int -> int -> float) -> (float * int array) option
(** [solve ~rows ~cols ~cost] assigns every row to a distinct column
    ([rows ≤ cols] required) minimising [Σ cost row col]. Returns the
    optimal value and [assignment.(row) = col], or [None] when every
    complete assignment has infinite cost. Costs must not be [nan] or
    [neg_infinity]. Raises [Invalid_argument] on [rows > cols]. *)

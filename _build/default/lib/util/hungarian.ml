(* Classic potentials formulation (see e.g. the "e-maxx" exposition):
   1-based internal arrays, row potentials u, column potentials v,
   p.(j) = row currently assigned to column j. *)

let solve ~rows ~cols ~cost =
  if rows > cols then invalid_arg "Hungarian.solve: rows must be <= cols";
  if rows = 0 then Some (0., [||])
  else begin
    let n = rows and m = cols in
    let u = Array.make (n + 1) 0. in
    let v = Array.make (m + 1) 0. in
    let p = Array.make (m + 1) 0 in
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) infinity in
      let used = Array.make (m + 1) false in
      let continue = ref true in
      while !continue do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity and j1 = ref 0 in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = cost (i0 - 1) (j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        (* If every reachable column sits at infinite reduced cost, the
           instance has no finite completion for this row. *)
        if !delta = infinity then raise Exit;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Augment along the alternating path. *)
      let j = ref !j0 in
      while !j <> 0 do
        let prev = way.(!j) in
        p.(!j) <- p.(prev);
        j := prev
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total = ref 0. in
    Array.iteri (fun i j -> total := !total +. cost i j) assignment;
    if Float.is_finite !total then Some (!total, assignment) else None
  end

let solve ~rows ~cols ~cost = try solve ~rows ~cols ~cost with Exit -> None

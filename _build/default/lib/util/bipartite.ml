type result = {
  size : int;
  left_match : int array;
  right_match : int array;
}

let infinity_dist = max_int

let max_matching ~left ~right ~adjacency =
  if left < 0 || right < 0 then invalid_arg "Bipartite: negative vertex count";
  if Array.length adjacency <> left then
    invalid_arg "Bipartite: adjacency must have one entry per left vertex";
  Array.iter
    (List.iter (fun v ->
         if v < 0 || v >= right then
           invalid_arg "Bipartite: neighbour out of range"))
    adjacency;
  let left_match = Array.make left (-1) in
  let right_match = Array.make right (-1) in
  let dist = Array.make left 0 in
  (* BFS layering from free left vertices; true if an augmenting path
     exists. *)
  let bfs () =
    let queue = Queue.create () in
    for i = 0 to left - 1 do
      if left_match.(i) = -1 then begin
        dist.(i) <- 0;
        Queue.add i queue
      end
      else dist.(i) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun j ->
          match right_match.(j) with
          | -1 -> found := true
          | i' ->
            if dist.(i') = infinity_dist then begin
              dist.(i') <- dist.(i) + 1;
              Queue.add i' queue
            end)
        adjacency.(i)
    done;
    !found
  in
  let rec dfs i =
    let rec try_neighbours = function
      | [] ->
        dist.(i) <- infinity_dist;
        false
      | j :: rest ->
        let extendable =
          match right_match.(j) with
          | -1 -> true
          | i' -> dist.(i') = dist.(i) + 1 && dfs i'
        in
        if extendable then begin
          left_match.(i) <- j;
          right_match.(j) <- i;
          true
        end
        else try_neighbours rest
    in
    try_neighbours adjacency.(i)
  in
  let size = ref 0 in
  while bfs () do
    for i = 0 to left - 1 do
      if left_match.(i) = -1 && dfs i then incr size
    done
  done;
  { size = !size; left_match; right_match }

let is_perfect_on_left r = Array.for_all (fun m -> m >= 0) r.left_match

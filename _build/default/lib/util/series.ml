type t = { label : string; points : (float * float) list }

let make ~label points =
  let points = List.stable_sort (fun (x1, _) (x2, _) -> compare x1 x2) points in
  { label; points }

let label t = t.label
let points t = t.points
let length t = List.length t.points
let is_empty t = t.points = []

let map_y f t = { t with points = List.map (fun (x, y) -> (x, f y)) t.points }
let filter p t = { t with points = List.filter p t.points }

let fold_range proj t =
  match t.points with
  | [] -> None
  | (x0, y0) :: rest ->
    let init = proj (x0, y0) in
    Some
      (List.fold_left
         (fun (mn, mx) pt ->
           let v = proj pt in
           (Float.min mn v, Float.max mx v))
         (init, init) rest)

let x_range t = fold_range fst t
let y_range t = fold_range snd t

let ranges series =
  let merge acc r =
    match (acc, r) with
    | None, r -> r
    | acc, None -> acc
    | Some (mn, mx), Some (mn', mx') -> Some (Float.min mn mn', Float.max mx mx')
  in
  let xr = List.fold_left (fun acc s -> merge acc (x_range s)) None series in
  let yr = List.fold_left (fun acc s -> merge acc (y_range s)) None series in
  match (xr, yr) with Some x, Some y -> Some (x, y) | _ -> None

let interpolate t x =
  let rec walk = function
    | [] | [ _ ] -> None
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
      if x < x1 then None
      else if x <= x2 then
        if x2 = x1 then Some y1
        else Some (y1 +. ((y2 -. y1) *. (x -. x1) /. (x2 -. x1)))
      else walk rest
  in
  match t.points with
  | [] -> None
  | [ (x1, y1) ] -> if x = x1 then Some y1 else None
  | (x1, y1) :: _ -> if x = x1 then Some y1 else walk t.points

let resample ~xs t =
  let pts =
    List.filter_map
      (fun x -> match interpolate t x with None -> None | Some y -> Some (x, y))
      xs
  in
  { t with points = pts }

let uniform_grid ?(points = 64) lo hi =
  if points < 2 || hi <= lo then [ lo ]
  else
    List.init points (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)))

let average ~label series =
  let non_empty = List.filter (fun s -> not (is_empty s)) series in
  match non_empty with
  | [] -> { label; points = [] }
  | _ ->
    (* Use the union of x-ranges: instances whose range does not cover a
       grid point simply do not vote there. *)
    let xr = List.filter_map x_range non_empty in
    let lo = List.fold_left (fun acc (l, _) -> Float.min acc l) infinity xr in
    let hi = List.fold_left (fun acc (_, h) -> Float.max acc h) neg_infinity xr in
    let grid = uniform_grid lo hi in
    let pts =
      List.filter_map
        (fun x ->
          let ys = List.filter_map (fun s -> interpolate s x) non_empty in
          match ys with
          | [] -> None
          | _ -> Some (x, List.fold_left ( +. ) 0. ys /. float_of_int (List.length ys)))
        grid
    in
    { label; points = pts }

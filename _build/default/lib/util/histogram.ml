type t = {
  lo : float;
  width : float; (* bin width; 0 for degenerate single-value samples *)
  bins : int array;
}

let build ?(bins = 10) samples =
  if samples = [] then invalid_arg "Histogram.build: empty sample list";
  List.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Histogram.build: non-finite sample")
    samples;
  let bins = max 1 bins in
  let lo, hi = Stats.min_max samples in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  List.iter
    (fun v ->
      let index =
        if width = 0. then 0
        else min (bins - 1) (int_of_float ((v -. lo) /. width))
      in
      counts.(index) <- counts.(index) + 1)
    samples;
  { lo; width; bins = counts }

let counts t =
  Array.to_list
    (Array.mapi
       (fun i count ->
         ( t.lo +. (float_of_int i *. t.width),
           t.lo +. (float_of_int (i + 1) *. t.width),
           count ))
       t.bins)

let total t = Array.fold_left ( + ) 0 t.bins

let render ?(width = 50) t =
  let largest = Array.fold_left max 1 t.bins in
  let buf = Buffer.create 512 in
  List.iter
    (fun (lo, hi, count) ->
      let bar = count * width / largest in
      Buffer.add_string buf
        (Printf.sprintf "%10.2f - %10.2f | %s %d\n" lo hi (String.make bar '#')
           count))
    (counts t);
  Buffer.contents buf

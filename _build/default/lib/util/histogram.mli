(** ASCII histograms.

    Used by the CLI's [simulate] command to show latency distributions
    from the stochastic simulator. Equal-width bins over the sample
    range; horizontal bars scaled to the largest bin. *)

type t

val build : ?bins:int -> float list -> t
(** [build samples] with [bins] equal-width bins (default 10, min 1).
    Raises [Invalid_argument] on an empty list or non-finite samples. *)

val counts : t -> (float * float * int) list
(** [(lo, hi, count)] per bin, in order. The last bin includes its upper
    edge. *)

val total : t -> int
val render : ?width:int -> t -> string
(** Bars of at most [width] (default 50) characters, with bin ranges and
    counts, e.g.:

    {v
  12.0 -  14.5 | ######################## 24
  14.5 -  17.0 | ########     8
    v} *)

let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_opt = function [] -> None | xs -> Some (mean xs)

let geometric_mean = function
  | [] -> invalid_arg "Stats.geometric_mean: empty list"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then
            invalid_arg "Stats.geometric_mean: non-positive value"
          else acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let variance xs =
  let n = List.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sq /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let sorted xs = List.sort compare xs

let median = function
  | [] -> invalid_arg "Stats.median: empty list"
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile q = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ when q < 0. || q > 1. -> invalid_arg "Stats.percentile: q not in [0,1]"
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (floor pos) in
      let hi = int_of_float (ceil pos) in
      if lo = hi then a.(lo)
      else
        let frac = pos -. float_of_int lo in
        (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (mn, mx) v -> (Float.min mn v, Float.max mx v)) (x, x) xs

module Acc = struct
  type t = {
    count : int;
    mean : float;
    m2 : float;  (* sum of squared deviations, Welford *)
    min : float;
    max : float;
  }

  let empty = { count = 0; mean = 0.; m2 = 0.; min = nan; max = nan }

  let add t x =
    let count = t.count + 1 in
    let delta = x -. t.mean in
    let mean = t.mean +. (delta /. float_of_int count) in
    let m2 = t.m2 +. (delta *. (x -. mean)) in
    let min = if t.count = 0 then x else Float.min t.min x in
    let max = if t.count = 0 then x else Float.max t.max x in
    { count; mean; m2; min; max }

  let add_list t xs = List.fold_left add t xs
  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min
  let max t = t.max
end

(** Small statistics toolkit used by the experiment campaign.

    Averages over 50 random application/platform pairs, dispersion measures
    for EXPERIMENTS.md, and a streaming accumulator so sweeps do not need to
    keep every sample alive. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val mean_opt : float list -> float option
(** [mean_opt xs] is [None] on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values. Raises [Invalid_argument] if the
    list is empty or contains a non-positive value. *)

val variance : float list -> float
(** Unbiased sample variance (Bessel's correction); [0.] for fewer than two
    samples. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val median : float list -> float
(** Median (average of the two middle values for even lengths). Raises
    [Invalid_argument] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile q xs] with [q] in [\[0,1\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on the empty list or if
    [q] is outside [\[0,1\]]. *)

val min_max : float list -> float * float
(** Smallest and largest value. Raises [Invalid_argument] on the empty
    list. *)

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Acc : sig
  type t

  val empty : t
  val add : t -> float -> t
  val add_list : t -> float list -> t
  val count : t -> int
  val mean : t -> float
  (** Mean of samples so far; [nan] when empty. *)

  val stddev : t -> float
  (** Sample standard deviation; [0.] with fewer than two samples. *)

  val min : t -> float
  val max : t -> float
  (** Extremes; [nan] when empty. *)
end

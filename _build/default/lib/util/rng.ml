type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function: add the gamma, then mix with two
   xor-shift-multiply rounds (constants from Stafford's Mix13). *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  { state = seed }

let positive_int t =
  (* Take the top 62 bits to stay within OCaml's native int range. *)
  Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0,1), as in the standard doubles trick. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

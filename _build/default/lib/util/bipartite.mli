(** Maximum bipartite matching (Hopcroft–Karp, [O(E√V)]).

    Substrate for the bottleneck-assignment solver of one-to-one
    mappings: stage [k] can sit on processor [u] iff its cycle-time
    there respects the threshold, and a perfect matching on stages means
    the threshold is achievable. *)

type result = {
  size : int;             (** cardinality of the matching *)
  left_match : int array; (** [left_match.(i)] = matched right vertex or -1 *)
  right_match : int array;(** inverse view *)
}

val max_matching : left:int -> right:int -> adjacency:int list array -> result
(** [max_matching ~left ~right ~adjacency] computes a maximum matching of
    the bipartite graph with [left] and [right] vertices and
    [adjacency.(i)] the right-neighbours of left vertex [i].
    Raises [Invalid_argument] on malformed input (wrong adjacency length,
    neighbour out of range). *)

val is_perfect_on_left : result -> bool
(** Every left vertex is matched. *)

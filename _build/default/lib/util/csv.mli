(** Machine-readable output: gnuplot [.dat] blocks and CSV files.

    The bench harness writes one [.dat] file per reproduced figure so the
    series can be re-plotted with gnuplot exactly like the paper's plots,
    plus CSV for spreadsheet-style consumption. All writers are pure
    string producers with thin [to_file] wrappers. *)

val dat_of_series : Series.t list -> string
(** gnuplot "index" format: one block per series ([# label] comment then
    [x y] lines), blocks separated by two blank lines. *)

val csv_of_series : Series.t list -> string
(** Long-format CSV with header [series,x,y]; labels are quoted if they
    contain commas or quotes. *)

val csv_of_rows : header:string list -> string list list -> string
(** Generic CSV from string cells (quoting as needed). *)

val to_file : string -> string -> unit
(** [to_file path contents] writes [contents] to [path], creating parent
    directories as needed. *)

lib/util/histogram.mli:

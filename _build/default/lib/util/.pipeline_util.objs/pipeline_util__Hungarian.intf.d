lib/util/hungarian.mli:

lib/util/series.mli:

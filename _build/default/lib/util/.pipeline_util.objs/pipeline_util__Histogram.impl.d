lib/util/histogram.ml: Array Buffer Float List Printf Stats String

lib/util/stats.mli:

lib/util/bipartite.ml: Array List Queue

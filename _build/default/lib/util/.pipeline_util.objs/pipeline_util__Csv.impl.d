lib/util/csv.ml: Buffer Filename Fun List Printf Series String Sys

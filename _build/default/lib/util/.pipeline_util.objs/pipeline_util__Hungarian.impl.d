lib/util/hungarian.ml: Array Float

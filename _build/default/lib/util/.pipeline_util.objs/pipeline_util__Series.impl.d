lib/util/series.ml: Float List

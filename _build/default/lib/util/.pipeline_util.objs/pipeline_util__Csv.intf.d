lib/util/csv.mli: Series

lib/util/table.mli:

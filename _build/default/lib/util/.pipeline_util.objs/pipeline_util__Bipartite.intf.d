lib/util/bipartite.mli:

lib/util/rng.mli:

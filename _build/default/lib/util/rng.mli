(** Deterministic pseudo-random number generation.

    Every experiment of the campaign must be reproducible bit-for-bit, so
    the library does not rely on the ambient [Random] state. This module
    implements the SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14):
    a small, fast, well-distributed 64-bit generator whose streams can be
    split deterministically, which lets each (experiment, instance) pair
    own an independent and reproducible stream. *)

type t
(** Mutable generator state. Generators are cheap (one [int64] cell). *)

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed. Two
    generators created with the same seed produce the same stream. *)

val copy : t -> t
(** [copy t] is an independent generator starting at the current state of
    [t]; advancing one does not affect the other. *)

val split : t -> t
(** [split t] advances [t] and derives a new, statistically independent
    generator. Use it to give sub-computations their own streams without
    coupling their consumption rates. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

type config = {
  width : int;
  height : int;
  x_label : string;
  y_label : string;
  title : string;
}

let default = { width = 72; height = 24; x_label = ""; y_label = ""; title = "" }

let markers = [| '+'; 'x'; 'o'; '*'; '#'; '@'; '%'; '&'; '='; '~' |]

let render ?(config = default) series =
  let drawable = List.filter (fun s -> not (Series.is_empty s)) series in
  match Series.ranges drawable with
  | None -> "(no data to plot)"
  | Some ((xmin, xmax), (ymin, ymax)) ->
    let w = max 16 config.width and h = max 8 config.height in
    (* Pad degenerate ranges so a flat series still renders mid-plot. *)
    let pad lo hi = if hi > lo then (lo, hi) else (lo -. 1., hi +. 1.) in
    let xmin, xmax = pad xmin xmax and ymin, ymax = pad ymin ymax in
    let grid = Array.make_matrix h w ' ' in
    let plot_series idx s =
      let marker = markers.(idx mod Array.length markers) in
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float
              (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (w - 1)))
          in
          let cy =
            int_of_float
              (Float.round ((y -. ymin) /. (ymax -. ymin) *. float_of_int (h - 1)))
          in
          if cx >= 0 && cx < w && cy >= 0 && cy < h then
            grid.(h - 1 - cy).(cx) <- marker)
        (Series.points s)
    in
    (* Draw back-to-front so that, on cell collisions, the first series
       of the legend stays visible. *)
    let indexed = List.mapi (fun idx s -> (idx, s)) drawable in
    List.iter (fun (idx, s) -> plot_series idx s) (List.rev indexed);
    let buf = Buffer.create ((w + 16) * (h + 8)) in
    if config.title <> "" then
      Buffer.add_string buf (Printf.sprintf "  %s\n" config.title);
    let y_tick row =
      (* Tick value for a grid row (row 0 is the top). *)
      ymin +. ((ymax -. ymin) *. float_of_int (h - 1 - row) /. float_of_int (h - 1))
    in
    Array.iteri
      (fun row line ->
        let tick =
          if row = 0 || row = h - 1 || row = h / 2 then
            Printf.sprintf "%10.2f |" (y_tick row)
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf tick;
        Buffer.add_string buf (String.init w (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make w '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-12.2f%*s%12.2f\n" "" xmin (w - 24) "" xmax);
    if config.x_label <> "" then
      Buffer.add_string buf
        (Printf.sprintf "%10s  %*s\n" "" ((w / 2) + (String.length config.x_label / 2))
           config.x_label);
    Buffer.add_string buf "  legend:";
    List.iteri
      (fun idx s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s" (markers.(idx mod Array.length markers))
             (Series.label s)))
      drawable;
    if config.y_label <> "" then
      Buffer.add_string buf (Printf.sprintf "   (y: %s)" config.y_label);
    Buffer.contents buf

let render_table series =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "# %s\n" (Series.label s));
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%12.4f %12.4f\n" x y))
        (Series.points s);
      Buffer.add_char buf '\n')
    series;
  Buffer.contents buf

type t = {
  id : int;
  seed : int;
  app : Application.t;
  platform : Platform.t;
}

let make ?(id = 0) ?(seed = 0) app platform = { id; seed; app; platform }

let single_proc_mapping t =
  Mapping.single ~n:(Application.n t.app) ~proc:(Platform.fastest t.platform)

let optimal_latency t = Metrics.latency t.app t.platform (single_proc_mapping t)
let single_proc_period t = Metrics.period t.app t.platform (single_proc_mapping t)

let pp fmt t =
  Format.fprintf fmt "instance#%d[seed=%d; %a; %a]" t.id t.seed Application.pp
    t.app Platform.pp t.platform

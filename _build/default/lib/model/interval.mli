(** Intervals of consecutive stages.

    An interval [\[d, e\]] (1-based, inclusive, [d ≤ e]) is the unit of
    allocation: interval mappings assign one interval per participating
    processor. *)

type t = private { first : int; last : int }

val make : first:int -> last:int -> t
(** Raises [Invalid_argument] unless [1 ≤ first ≤ last]. *)

val singleton : int -> t
(** [singleton k] is [\[k, k\]]. *)

val first : t -> int
val last : t -> int

val length : t -> int
(** Number of stages, [last - first + 1]. *)

val mem : t -> int -> bool
(** [mem t k] is true when [first ≤ k ≤ last]. *)

val split_points : t -> int list
(** The positions [c] with [first ≤ c < last]: cutting after stage [c]
    yields two non-empty halves [\[first, c\]] and [\[c+1, last\]]. Empty
    for singletons. *)

val split_at : t -> int -> t * t
(** [split_at t c] cuts after stage [c]. Raises [Invalid_argument] unless
    [c] is a valid split point. *)

val split3_at : t -> int -> int -> t * t * t
(** [split3_at t c1 c2] with [first ≤ c1 < c2 < last] cuts into the three
    non-empty parts [\[first,c1\]], [\[c1+1,c2\]], [\[c2+1,last\]]. *)

val partition_of : int -> t list -> bool
(** [partition_of n ivs] checks that [ivs] is, in order, a partition of
    [\[1..n\]] into consecutive intervals ([d_1 = 1], [d_{j+1} = e_j + 1],
    [e_m = n]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

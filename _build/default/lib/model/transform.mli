(** Application transformations.

    {!coarsen} fuses consecutive stages into groups, shrinking [n] so
    the exponential exact solvers (or the heuristics, on very deep
    pipelines) become cheap — at the cost of restricting cut positions to
    group boundaries. The key property, checked by the test suite: a
    mapping of the coarsened application and its {!refine_mapping} lift
    have {e identical} period and latency on the original application,
    because group-boundary communications and group work sums are
    preserved exactly. Coarse solutions are therefore feasible (possibly
    suboptimal) solutions of the original instance.

    {!scale} converts units (e.g. Mcycles to Gcycles, MB to GB) without
    changing the mapping problem's structure. *)

val coarsen : factor:int -> Application.t -> Application.t
(** Fuse groups of [factor] consecutive stages (the last group may be
    smaller). Group work = sum of its stages; the messages at group
    boundaries survive, interior ones disappear. [factor ≥ 1]. Labels
    are joined with ["+"]. *)

val refine_mapping : factor:int -> n:int -> Mapping.t -> Mapping.t
(** Lift a mapping of the coarsened application (with [⌈n/factor⌉]
    stages) back onto the original [n] stages. Raises [Invalid_argument]
    when shapes do not line up. *)

val coarse_solve :
  factor:int ->
  solve:(Instance.t -> Mapping.t option) ->
  Instance.t ->
  Mapping.t option
(** Solve the coarsened instance with [solve] and lift the result. *)

val scale : ?work:float -> ?data:float -> Application.t -> Application.t
(** Multiply all works by [work] and all message sizes by [data]
    (defaults 1). Factors must be strictly positive. *)

lib/model/instance.ml: Application Format Mapping Metrics Platform

lib/model/mapping_io.mli: Mapping

lib/model/interval.mli: Format

lib/model/instance.mli: Application Format Mapping Platform

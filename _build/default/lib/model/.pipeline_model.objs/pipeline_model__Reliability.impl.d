lib/model/reliability.ml: Array Format List Mapping

lib/model/platform_generator.ml: Array Pipeline_util Platform

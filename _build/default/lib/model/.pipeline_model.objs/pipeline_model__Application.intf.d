lib/model/application.mli: Format

lib/model/app_generator.mli: Application Format Pipeline_util

lib/model/metrics.mli: Application Format Mapping Platform

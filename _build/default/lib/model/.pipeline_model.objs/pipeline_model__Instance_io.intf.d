lib/model/instance_io.mli: Format Instance

lib/model/platform.ml: Array Float Format Option Printf String

lib/model/transform.ml: Application Array Instance Interval List Mapping Option String

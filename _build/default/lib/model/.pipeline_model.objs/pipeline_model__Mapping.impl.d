lib/model/mapping.ml: Array Format Hashtbl Interval List Platform Printf String

lib/model/transform.mli: Application Instance Mapping

lib/model/platform_generator.mli: Pipeline_util Platform

lib/model/skeleton.ml: Application Array Format List Printf String

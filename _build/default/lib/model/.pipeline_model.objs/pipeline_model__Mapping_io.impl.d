lib/model/mapping_io.ml: Interval List Mapping Printf String

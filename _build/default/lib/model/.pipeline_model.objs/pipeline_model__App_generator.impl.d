lib/model/app_generator.ml: Application Array Format Pipeline_util

lib/model/metrics.ml: Application Float Format Interval Mapping Platform

lib/model/application.ml: Array Float Format List Option Printf String

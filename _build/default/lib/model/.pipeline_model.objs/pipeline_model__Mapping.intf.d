lib/model/mapping.mli: Format Interval Platform

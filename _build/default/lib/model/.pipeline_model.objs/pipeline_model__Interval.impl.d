lib/model/interval.ml: Format List Printf Stdlib

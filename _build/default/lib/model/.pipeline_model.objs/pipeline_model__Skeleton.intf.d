lib/model/skeleton.mli: Application Format

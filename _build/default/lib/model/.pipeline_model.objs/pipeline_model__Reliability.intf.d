lib/model/reliability.mli: Format Mapping

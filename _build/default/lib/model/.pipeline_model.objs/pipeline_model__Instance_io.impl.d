lib/model/instance_io.ml: Application Array Buffer Filename Format In_channel Instance List Out_channel Platform Printf String Sys

(** Compact textual mappings.

    The format is one token per interval, space-separated, in pipeline
    order: [FIRST-LAST:PROC] (or [STAGE:PROC] for singletons), e.g.
    ["1-3:2 4:0 5-6:1"]. Used by the CLI to pass explicit mappings in and
    print them out in a machine-readable way. *)

val to_string : Mapping.t -> string

val of_string : string -> (Mapping.t, string) result
(** Parses and validates (partition shape, distinct processors); the
    error is a human-readable message. *)

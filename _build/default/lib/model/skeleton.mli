(** Algorithmic-skeleton front end.

    The paper frames pipeline mapping as a service to skeleton libraries
    (§1: the programmer composes known patterns; the runtime maps them).
    This module is that front end: a tiny combinator language for
    describing a pipeline of named stages — with optional [deal]
    annotations marking stages the programmer allows to be replicated —
    that compiles to the flat {!Application} the solvers consume.

    {[
      let workflow =
        Skeleton.(
          pipeline
            [
              stage "decode" ~work:55. ~out:6.2;
              stage "scale" ~work:30. ~out:3.1;
              deal (stage "encode" ~work:140. ~out:0.5);
              stage "mux" ~work:6. ~out:0.4;
            ])

      let app = Skeleton.to_application ~input:0.8 workflow
      let replicable = Skeleton.deal_stages workflow  (* [3] *)
    ]} *)

type t

val stage : string -> work:float -> out:float -> t
(** A named stage: [work] operations, output message of size [out]. *)

val deal : t -> t
(** Mark a stage (or every stage of a sub-pipeline) as replicable by a
    deal skeleton. Idempotent. *)

val pipeline : t list -> t
(** Sequential composition. Raises [Invalid_argument] on the empty
    list. Nested pipelines are flattened. *)

val stages : t -> (string * float * float) list
(** The flat [(label, work, out)] list, in order. *)

val length : t -> int

val to_application : ?input:float -> t -> Application.t
(** Compile to the solvers' representation; [input] is [δ_0]
    (default 0). *)

val deal_stages : t -> int list
(** 1-based indices of the stages marked replicable, in order. *)

val of_application : Application.t -> t
(** Lift a flat application back (stage labels preserved); [δ_0] is
    dropped (pass it back via [~input] when re-compiling). *)

val pp : Format.formatter -> t -> unit
(** E.g. ["decode >> scale >> deal(encode) >> mux"]. *)

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse of error

let fail line message = raise (Parse { line; message })

(* A tokenised, comment-stripped line. *)
type line = { number : int; tokens : string list }

let tokenise text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw ->
         let without_comment =
           match String.index_opt raw '#' with
           | Some pos -> String.sub raw 0 pos
           | None -> raw
         in
         let tokens =
           String.split_on_char ' ' without_comment
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         in
         { number = i + 1; tokens })
  |> List.filter (fun l -> l.tokens <> [])

let float_of_token line t =
  match float_of_string_opt t with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected a number, got %S" t)

let int_of_token line t =
  match int_of_string_opt t with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected an integer, got %S" t)

let floats line tokens = Array.of_list (List.map (float_of_token line) tokens)

type platform_kind = Comm_hom | Fully_het

type accumulator = {
  mutable n : int option;
  mutable labels : string array option;
  mutable works : float array option;
  mutable deltas : float array option;
  mutable kind : platform_kind option;
  mutable bandwidth : float option;
  mutable io_bandwidth : float option;
  mutable speeds : float array option;
  mutable links : (int * int * float) list;
  mutable ios : (int * float) list;
}

let empty () =
  {
    n = None;
    labels = None;
    works = None;
    deltas = None;
    kind = None;
    bandwidth = None;
    io_bandwidth = None;
    speeds = None;
    links = [];
    ios = [];
  }

let consume acc { number; tokens } =
  match tokens with
  | [ "pipeline"; n ] -> acc.n <- Some (int_of_token number n)
  | "labels" :: labels -> acc.labels <- Some (Array.of_list labels)
  | "works" :: values -> acc.works <- Some (floats number values)
  | "deltas" :: values -> acc.deltas <- Some (floats number values)
  | [ "platform"; "comm-hom" ] -> acc.kind <- Some Comm_hom
  | [ "platform"; "fully-het" ] -> acc.kind <- Some Fully_het
  | [ "platform"; other ] ->
    fail number (Printf.sprintf "unknown platform kind %S" other)
  | [ "bandwidth"; b ] -> acc.bandwidth <- Some (float_of_token number b)
  | [ "io-bandwidth"; b ] -> acc.io_bandwidth <- Some (float_of_token number b)
  | "speeds" :: values -> acc.speeds <- Some (floats number values)
  | [ "link"; u; v; b ] ->
    acc.links <-
      (int_of_token number u, int_of_token number v, float_of_token number b)
      :: acc.links
  | [ "io"; u; b ] ->
    acc.ios <- (int_of_token number u, float_of_token number b) :: acc.ios
  | key :: _ -> fail number (Printf.sprintf "unknown or malformed entry %S" key)
  | [] -> ()

let require line what = function
  | Some v -> v
  | None -> fail line (Printf.sprintf "missing %s" what)

let build acc =
  let n = require 0 "'pipeline <n>'" acc.n in
  let works = require 0 "'works'" acc.works in
  let deltas = require 0 "'deltas'" acc.deltas in
  if Array.length works <> n then fail 0 "works must list n values";
  if Array.length deltas <> n + 1 then fail 0 "deltas must list n+1 values";
  (match acc.labels with
  | Some l when Array.length l <> n -> fail 0 "labels must list n names"
  | _ -> ());
  let app =
    try Application.make ?labels:acc.labels ~deltas works
    with Invalid_argument m -> fail 0 m
  in
  let speeds = require 0 "'speeds'" acc.speeds in
  let p = Array.length speeds in
  let platform =
    match require 0 "'platform'" acc.kind with
    | Comm_hom ->
      let bandwidth = require 0 "'bandwidth'" acc.bandwidth in
      (try
         Platform.comm_homogeneous ?io_bandwidth:acc.io_bandwidth ~bandwidth
           speeds
       with Invalid_argument m -> fail 0 m)
    | Fully_het ->
      let bandwidths = Array.make_matrix p p 0. in
      List.iter
        (fun (u, v, b) ->
          if u < 0 || u >= p || v < 0 || v >= p || u = v then
            fail 0 (Printf.sprintf "link %d %d: bad processor pair" u v);
          bandwidths.(u).(v) <- b;
          bandwidths.(v).(u) <- b)
        acc.links;
      for u = 0 to p - 1 do
        for v = u + 1 to p - 1 do
          if bandwidths.(u).(v) = 0. then
            fail 0 (Printf.sprintf "missing 'link %d %d <b>'" u v)
        done
      done;
      let io_bandwidths =
        match acc.ios with
        | [] -> None
        | ios ->
          let io = Array.make p 0. in
          List.iter
            (fun (u, b) ->
              if u < 0 || u >= p then fail 0 (Printf.sprintf "io %d: bad processor" u);
              io.(u) <- b)
            ios;
          Array.iteri
            (fun u b -> if b = 0. then fail 0 (Printf.sprintf "missing 'io %d <b>'" u))
            io;
          Some io
      in
      (try Platform.fully_heterogeneous ?io_bandwidths ~bandwidths speeds
       with Invalid_argument m -> fail 0 m)
  in
  Instance.make app platform

let of_string text =
  match
    let acc = empty () in
    List.iter (consume acc) (tokenise text);
    build acc
  with
  | inst -> Ok inst
  | exception Parse e -> Error e

let float_list a =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") a))

let to_string (inst : Instance.t) =
  let app = inst.app and platform = inst.platform in
  let n = Application.n app and p = Platform.p platform in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pipeline %d\n" n);
  let labels = List.init n (fun k -> Application.label app (k + 1)) in
  let default_labels = List.init n (fun k -> Printf.sprintf "S%d" (k + 1)) in
  if labels <> default_labels then
    Buffer.add_string buf (Printf.sprintf "labels %s\n" (String.concat " " labels));
  Buffer.add_string buf (Printf.sprintf "works %s\n" (float_list (Application.works app)));
  Buffer.add_string buf
    (Printf.sprintf "deltas %s\n" (float_list (Application.deltas app)));
  if Platform.is_comm_homogeneous platform then begin
    Buffer.add_string buf "platform comm-hom\n";
    Buffer.add_string buf
      (Printf.sprintf "bandwidth %.17g\n"
         (if p > 1 then Platform.bandwidth platform 0 1
          else Platform.io_bandwidth platform 0));
    Buffer.add_string buf
      (Printf.sprintf "speeds %s\n" (float_list (Platform.speeds platform)))
  end
  else begin
    Buffer.add_string buf "platform fully-het\n";
    Buffer.add_string buf
      (Printf.sprintf "speeds %s\n" (float_list (Platform.speeds platform)));
    for u = 0 to p - 1 do
      for v = u + 1 to p - 1 do
        Buffer.add_string buf
          (Printf.sprintf "link %d %d %.17g\n" u v (Platform.bandwidth platform u v))
      done
    done;
    for u = 0 to p - 1 do
      Buffer.add_string buf
        (Printf.sprintf "io %d %.17g\n" u (Platform.io_bandwidth platform u))
    done
  end;
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error message -> Error { line = 0; message }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save path inst =
  mkdir_p (Filename.dirname path);
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string inst))

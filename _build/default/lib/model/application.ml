type t = {
  works : float array;  (* w_1 .. w_n stored at indices 0 .. n-1 *)
  deltas : float array; (* δ_0 .. δ_n stored at indices 0 .. n *)
  labels : string array option;
  prefix : float array; (* prefix.(k) = Σ_{i=1..k} w_i, prefix.(0) = 0 *)
}

let check_non_negative name a =
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0. then
        invalid_arg (Printf.sprintf "Application.make: %s must be finite and >= 0" name))
    a

let make ?labels ~deltas works =
  let n = Array.length works in
  if n = 0 then invalid_arg "Application.make: empty pipeline";
  if Array.length deltas <> n + 1 then
    invalid_arg "Application.make: deltas must have length n+1";
  (match labels with
  | Some l when Array.length l <> n ->
    invalid_arg "Application.make: labels must have length n"
  | _ -> ());
  check_non_negative "works" works;
  check_non_negative "deltas" deltas;
  let prefix = Array.make (n + 1) 0. in
  for k = 1 to n do
    prefix.(k) <- prefix.(k - 1) +. works.(k - 1)
  done;
  {
    works = Array.copy works;
    deltas = Array.copy deltas;
    labels = Option.map Array.copy labels;
    prefix;
  }

let uniform ~n ~work ~delta =
  make ~deltas:(Array.make (n + 1) delta) (Array.make n work)

let of_stages specs ~delta0 =
  let n = List.length specs in
  if n = 0 then invalid_arg "Application.of_stages: empty pipeline";
  let works = Array.make n 0. and deltas = Array.make (n + 1) 0. in
  deltas.(0) <- delta0;
  List.iteri
    (fun i (w, d) ->
      works.(i) <- w;
      deltas.(i + 1) <- d)
    specs;
  make ~deltas works

let n t = Array.length t.works

let work t k =
  if k < 1 || k > n t then invalid_arg "Application.work: stage out of range";
  t.works.(k - 1)

let delta t k =
  if k < 0 || k > n t then invalid_arg "Application.delta: index out of range";
  t.deltas.(k)

let label t k =
  if k < 1 || k > n t then invalid_arg "Application.label: stage out of range";
  match t.labels with Some l -> l.(k - 1) | None -> Printf.sprintf "S%d" k

let work_sum t d e =
  if d < 1 || e > n t || d > e then
    invalid_arg "Application.work_sum: invalid interval";
  t.prefix.(e) -. t.prefix.(d - 1)

let total_work t = t.prefix.(n t)

let works t = Array.copy t.works
let deltas t = Array.copy t.deltas

let equal a b = a.works = b.works && a.deltas = b.deltas

let float_list a =
  String.concat "," (Array.to_list (Array.map (fun v -> Printf.sprintf "%g" v) a))

let to_compact_string t =
  Printf.sprintf "pipeline[n=%d; w=%s; d=%s]" (n t) (float_list t.works)
    (float_list t.deltas)

let pp fmt t = Format.pp_print_string fmt (to_compact_string t)

let to_string mapping =
  Mapping.intervals mapping
  |> List.map (fun (iv, u) ->
         let first = Interval.first iv and last = Interval.last iv in
         if first = last then Printf.sprintf "%d:%d" first u
         else Printf.sprintf "%d-%d:%d" first last u)
  |> String.concat " "

let parse_token token =
  match String.split_on_char ':' token with
  | [ range; proc ] -> (
    let proc =
      match int_of_string_opt proc with
      | Some u when u >= 0 -> Ok u
      | _ -> Error (Printf.sprintf "bad processor in %S" token)
    in
    let range =
      match String.split_on_char '-' range with
      | [ single ] -> (
        match int_of_string_opt single with
        | Some k -> Ok (k, k)
        | None -> Error (Printf.sprintf "bad stage in %S" token))
      | [ first; last ] -> (
        match (int_of_string_opt first, int_of_string_opt last) with
        | Some f, Some l -> Ok (f, l)
        | _ -> Error (Printf.sprintf "bad range in %S" token))
      | _ -> Error (Printf.sprintf "bad range in %S" token)
    in
    match (range, proc) with
    | Ok (f, l), Ok u -> Ok (f, l, u)
    | Error e, _ | _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "expected FIRST-LAST:PROC, got %S" token)

let of_string text =
  let tokens =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun t -> t <> "")
  in
  if tokens = [] then Error "empty mapping"
  else begin
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | token :: rest -> (
        match parse_token token with
        | Ok triple -> parse_all (triple :: acc) rest
        | Error e -> Error e)
    in
    match parse_all [] tokens with
    | Error e -> Error e
    | Ok triples -> (
      let n =
        List.fold_left (fun acc (_, last, _) -> max acc last) 0 triples
      in
      match
        Mapping.make ~n
          (List.map
             (fun (f, l, u) -> (Interval.make ~first:f ~last:l, u))
             triples)
      with
      | mapping -> Ok mapping
      | exception Invalid_argument message -> Error message)
  end

type node = { label : string; work : float; out : float; replicable : bool }

type t = node list (* non-empty, in pipeline order *)

let stage label ~work ~out = [ { label; work; out; replicable = false } ]

let deal t = List.map (fun node -> { node with replicable = true }) t

let pipeline = function
  | [] -> invalid_arg "Skeleton.pipeline: empty pipeline"
  | parts -> List.concat parts

let stages t = List.map (fun node -> (node.label, node.work, node.out)) t

let length = List.length

let to_application ?(input = 0.) t =
  let n = length t in
  let works = Array.make n 0. and deltas = Array.make (n + 1) 0. in
  let labels = Array.make n "" in
  deltas.(0) <- input;
  List.iteri
    (fun i node ->
      works.(i) <- node.work;
      deltas.(i + 1) <- node.out;
      labels.(i) <- node.label)
    t;
  Application.make ~labels ~deltas works

let deal_stages t =
  List.concat
    (List.mapi (fun i node -> if node.replicable then [ i + 1 ] else []) t)

let of_application app =
  let n = Application.n app in
  List.init n (fun i ->
      {
        label = Application.label app (i + 1);
        work = Application.work app (i + 1);
        out = Application.delta app (i + 1);
        replicable = false;
      })

let pp fmt t =
  let part node =
    if node.replicable then Printf.sprintf "deal(%s)" node.label else node.label
  in
  Format.pp_print_string fmt (String.concat " >> " (List.map part t))

(** Pipeline applications (paper §2, Figure 1).

    An application is a linear chain of [n] stages [S_1 … S_n]. Stage [S_k]
    reads a message of size [δ_{k-1}] from its predecessor (or from the
    outside world for [k = 1]), performs [w_k] units of computation, and
    writes a message of size [δ_k] to its successor (or to the outside
    world for [k = n]).

    Stage indices are 1-based, matching the paper; communication sizes are
    0-based: [delta t k] is defined for [0 ≤ k ≤ n].

    All quantities are non-negative floats. Interval work sums are served
    from a prefix-sum table, so {!work_sum} is O(1). Values of this type
    are immutable. *)

type t

val make : ?labels:string array -> deltas:float array -> float array -> t
(** [make ~deltas works] builds an application with
    [n = Array.length works] stages; [deltas] must have length [n + 1]
    ([δ_0 … δ_n]). [labels], when given, names each stage (length [n]).
    Raises [Invalid_argument] if lengths are inconsistent, [n = 0], or any
    value is negative or not finite. The arrays are copied. *)

val uniform : n:int -> work:float -> delta:float -> t
(** [uniform ~n ~work ~delta] is the application with [n] identical stages
    of weight [work] and all communications of size [delta]. *)

val of_stages : (float * float) list -> delta0:float -> t
(** [of_stages specs ~delta0] builds an application from
    [specs = [(w_1, δ_1); …; (w_n, δ_n)]] plus the initial input size
    [δ_0]. *)

val n : t -> int
(** Number of stages. *)

val work : t -> int -> float
(** [work t k] is [w_k], for [1 ≤ k ≤ n]. Raises [Invalid_argument]
    otherwise. *)

val delta : t -> int -> float
(** [delta t k] is [δ_k], for [0 ≤ k ≤ n]. Raises [Invalid_argument]
    otherwise. *)

val label : t -> int -> string
(** [label t k] is the name of stage [k] (["S<k>"] when unnamed). *)

val work_sum : t -> int -> int -> float
(** [work_sum t d e] is [Σ_{i=d..e} w_i] (inclusive), in O(1).
    Raises [Invalid_argument] unless [1 ≤ d ≤ e ≤ n]. *)

val total_work : t -> float
(** [work_sum t 1 n]. *)

val works : t -> float array
val deltas : t -> float array
(** Fresh copies of the underlying arrays. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_compact_string : t -> string
(** One-line summary, e.g. ["pipeline[n=4; w=1,2,3,4; d=10,10,10,10,10]"]. *)

type t = float array

let make f =
  Array.iter
    (fun x ->
      if not (x >= 0. && x <= 1.) then
        invalid_arg "Reliability.make: failure probabilities must be in [0,1]")
    f;
  Array.copy f

let uniform ~p f =
  if p < 1 then invalid_arg "Reliability.uniform: p must be >= 1";
  make (Array.make p f)

let p t = Array.length t

let failure t u =
  if u < 0 || u >= Array.length t then
    invalid_arg "Reliability.failure: processor out of range";
  t.(u)

let success t u = 1. -. failure t u

let group_failure t procs =
  List.fold_left (fun acc u -> acc *. failure t u) 1. procs

let group_success t procs =
  List.fold_left (fun acc u -> acc *. success t u) 1. procs

let mapping_success t mapping =
  Array.fold_left (fun acc u -> acc *. success t u) 1. (Mapping.procs mapping)

let mapping_failure t mapping = 1. -. mapping_success t mapping

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list t)

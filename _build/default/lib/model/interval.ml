type t = { first : int; last : int }

let make ~first ~last =
  if first < 1 || last < first then invalid_arg "Interval.make: need 1 <= first <= last";
  { first; last }

let singleton k = make ~first:k ~last:k
let first t = t.first
let last t = t.last
let length t = t.last - t.first + 1
let mem t k = t.first <= k && k <= t.last

let split_points t =
  List.init (t.last - t.first) (fun i -> t.first + i)

let split_at t c =
  if c < t.first || c >= t.last then invalid_arg "Interval.split_at: bad cut";
  ({ first = t.first; last = c }, { first = c + 1; last = t.last })

let split3_at t c1 c2 =
  if not (t.first <= c1 && c1 < c2 && c2 < t.last) then
    invalid_arg "Interval.split3_at: bad cuts";
  ( { first = t.first; last = c1 },
    { first = c1 + 1; last = c2 },
    { first = c2 + 1; last = t.last } )

let partition_of n = function
  | [] -> false
  | first_iv :: _ as ivs ->
    let rec check expected = function
      | [] -> expected = n + 1
      | iv :: rest -> iv.first = expected && check (iv.last + 1) rest
    in
    first_iv.first = 1 && check 1 ivs

let equal a b = a.first = b.first && a.last = b.last
let compare a b =
  match Stdlib.compare a.first b.first with 0 -> Stdlib.compare a.last b.last | c -> c

let to_string t =
  if t.first = t.last then Printf.sprintf "[%d]" t.first
  else Printf.sprintf "[%d..%d]" t.first t.last

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Textual instance files.

    A small line-oriented format so applications and platforms can be
    versioned, shared and fed to the CLI:

    {v
# transcoding chain on the lab cluster
pipeline 4
labels   parse filter join emit      # optional
works    4 8 2 6
deltas   10 20 30 20 10
platform comm-hom
bandwidth 10
speeds   2 4 1
io-bandwidth 10                      # optional, defaults to bandwidth
    v}

    Fully heterogeneous platforms replace [bandwidth] with one
    [link u v b] line per processor pair (symmetric; unspecified pairs
    are an error) and optionally [io u b] lines:

    {v
platform fully-het
speeds 2 4
link 0 1 5
io 0 8
io 1 8
    v}

    ['#'] starts a comment; blank lines are ignored; keys may appear in
    any order after [pipeline]/[platform]. {!to_string} and {!of_string}
    round-trip. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val of_string : string -> (Instance.t, error) result
(** Parse an instance; the error carries the 1-based offending line. *)

val to_string : Instance.t -> string
(** Serialise an instance (canonical key order, no comments). *)

val load : string -> (Instance.t, error) result
(** Read a file ([Sys_error]s are turned into an [error] on line 0). *)

val save : string -> Instance.t -> unit
(** Write a file, creating parent directories. *)

type t = {
  n : int;
  assignment : (Interval.t * int) array; (* in pipeline order *)
}

let check_procs assignment =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (_, u) ->
      if u < 0 then invalid_arg "Mapping: negative processor index";
      if Hashtbl.mem seen u then
        invalid_arg "Mapping: processor assigned to several intervals";
      Hashtbl.add seen u ())
    assignment

let make ~n assignment =
  let ivs = List.map fst assignment in
  if not (Interval.partition_of n ivs) then
    invalid_arg "Mapping.make: intervals must partition [1..n] in order";
  let assignment = Array.of_list assignment in
  check_procs assignment;
  { n; assignment }

let single ~n ~proc = make ~n [ (Interval.make ~first:1 ~last:n, proc) ]

let one_to_one ~procs =
  let n = Array.length procs in
  make ~n (List.init n (fun i -> (Interval.singleton (i + 1), procs.(i))))

let of_cuts ~n ~cuts ~procs =
  let rec intervals start = function
    | [] -> [ Interval.make ~first:start ~last:n ]
    | c :: rest ->
      if c < start || c >= n then invalid_arg "Mapping.of_cuts: bad cut position";
      Interval.make ~first:start ~last:c :: intervals (c + 1) rest
  in
  let ivs = intervals 1 cuts in
  if List.length ivs <> List.length procs then
    invalid_arg "Mapping.of_cuts: need one processor per interval";
  make ~n (List.combine ivs procs)

let n t = t.n
let m t = Array.length t.assignment

let interval t j =
  if j < 0 || j >= m t then invalid_arg "Mapping.interval: index out of range";
  fst t.assignment.(j)

let proc t j =
  if j < 0 || j >= m t then invalid_arg "Mapping.proc: index out of range";
  snd t.assignment.(j)

let intervals t = Array.to_list t.assignment
let procs t = Array.map snd t.assignment

let proc_of_stage t k =
  if k < 1 || k > t.n then invalid_arg "Mapping.proc_of_stage: stage out of range";
  let rec find j =
    if Interval.mem (fst t.assignment.(j)) k then snd t.assignment.(j)
    else find (j + 1)
  in
  find 0

let interval_of_proc t u =
  Array.fold_left
    (fun acc (iv, v) -> if v = u then Some iv else acc)
    None t.assignment

let uses t u = Array.exists (fun (_, v) -> v = u) t.assignment

let replace t ~j parts =
  if j < 0 || j >= m t then invalid_arg "Mapping.replace: index out of range";
  if parts = [] then invalid_arg "Mapping.replace: empty replacement";
  let target = fst t.assignment.(j) in
  (* The parts must tile the replaced interval exactly. *)
  let rec tiles expected = function
    | [] -> expected = Interval.last target + 1
    | (iv, _) :: rest -> Interval.first iv = expected && tiles (Interval.last iv + 1) rest
  in
  if not (tiles (Interval.first target) parts) then
    invalid_arg "Mapping.replace: parts must tile the replaced interval";
  let before = Array.to_list (Array.sub t.assignment 0 j) in
  let after =
    Array.to_list (Array.sub t.assignment (j + 1) (m t - j - 1))
  in
  make ~n:t.n (before @ parts @ after)

let valid_on t platform =
  Array.for_all (fun (_, u) -> u >= 0 && u < Platform.p platform) t.assignment

let equal a b = a.n = b.n && a.assignment = b.assignment

let to_string t =
  let part (iv, u) = Printf.sprintf "%s->P%d" (Interval.to_string iv) u in
  "{" ^ String.concat ", " (List.map part (intervals t)) ^ "}"

let pp fmt t = Format.pp_print_string fmt (to_string t)

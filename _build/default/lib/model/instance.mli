(** A problem instance: one application paired with one platform.

    The experiment campaign manipulates (application, platform) pairs as a
    unit — 50 random pairs per measurement point — so this tiny module
    gives the pair a name, a seed for provenance, and the derived
    quantities every solver needs. *)

type t = {
  id : int;                  (** instance number within its batch *)
  seed : int;                (** RNG seed that produced it *)
  app : Application.t;
  platform : Platform.t;
}

val make : ?id:int -> ?seed:int -> Application.t -> Platform.t -> t
(** [id] and [seed] default to 0. *)

val single_proc_mapping : t -> Mapping.t
(** Whole pipeline on the fastest processor: the latency-optimal mapping
    (Lemma 1), and every heuristic's starting point. *)

val optimal_latency : t -> float
(** Latency of {!single_proc_mapping}. *)

val single_proc_period : t -> float
(** Period of {!single_proc_mapping} — the trivially achievable period,
    i.e. the largest threshold any period-fixing sweep needs to consider. *)

val pp : Format.formatter -> t -> unit

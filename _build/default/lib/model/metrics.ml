let check app platform mapping =
  if Mapping.n mapping <> Application.n app then
    invalid_arg "Metrics: mapping and application disagree on n";
  if not (Mapping.valid_on mapping platform) then
    invalid_arg "Metrics: mapping references processors outside the platform"

let in_bandwidth platform mapping j =
  if j = 0 then Platform.io_bandwidth platform (Mapping.proc mapping 0)
  else Platform.bandwidth platform (Mapping.proc mapping (j - 1)) (Mapping.proc mapping j)

let out_bandwidth platform mapping j =
  let m = Mapping.m mapping in
  if j = m - 1 then Platform.io_bandwidth platform (Mapping.proc mapping j)
  else Platform.bandwidth platform (Mapping.proc mapping j) (Mapping.proc mapping (j + 1))

let unchecked_cycle_time app platform mapping j =
  let iv = Mapping.interval mapping j in
  let u = Mapping.proc mapping j in
  let d = Interval.first iv and e = Interval.last iv in
  Application.delta app (d - 1) /. in_bandwidth platform mapping j
  +. (Application.work_sum app d e /. Platform.speed platform u)
  +. (Application.delta app e /. out_bandwidth platform mapping j)

let cycle_time app platform mapping j =
  check app platform mapping;
  if j < 0 || j >= Mapping.m mapping then
    invalid_arg "Metrics.cycle_time: interval index out of range";
  unchecked_cycle_time app platform mapping j

let period app platform mapping =
  check app platform mapping;
  let worst = ref neg_infinity in
  for j = 0 to Mapping.m mapping - 1 do
    worst := Float.max !worst (unchecked_cycle_time app platform mapping j)
  done;
  !worst

let bottleneck app platform mapping =
  check app platform mapping;
  let best_j = ref 0 and best = ref neg_infinity in
  for j = 0 to Mapping.m mapping - 1 do
    let c = unchecked_cycle_time app platform mapping j in
    if c > !best then begin
      best := c;
      best_j := j
    end
  done;
  !best_j

let unchecked_latency app platform mapping =
  let m = Mapping.m mapping in
  let total = ref 0. in
  for j = 0 to m - 1 do
    let iv = Mapping.interval mapping j in
    let u = Mapping.proc mapping j in
    let d = Interval.first iv and e = Interval.last iv in
    total :=
      !total
      +. (Application.delta app (d - 1) /. in_bandwidth platform mapping j)
      +. (Application.work_sum app d e /. Platform.speed platform u)
  done;
  let n = Application.n app in
  !total +. (Application.delta app n /. out_bandwidth platform mapping (m - 1))

let latency app platform mapping =
  check app platform mapping;
  unchecked_latency app platform mapping

type summary = { period : float; latency : float; intervals : int }

let summary app platform mapping =
  check app platform mapping;
  let worst = ref neg_infinity in
  for j = 0 to Mapping.m mapping - 1 do
    worst := Float.max !worst (unchecked_cycle_time app platform mapping j)
  done;
  {
    period = !worst;
    latency = unchecked_latency app platform mapping;
    intervals = Mapping.m mapping;
  }

let pp_summary fmt s =
  Format.fprintf fmt "period=%g latency=%g intervals=%d" s.period s.latency
    s.intervals

(** Per-processor reliability — the third criterion.

    The paper schedules for period and latency on processors that never
    fail; the fault-tolerance extension attaches to each processor [u] a
    probability [f_u ∈ \[0,1\]] of failing during the window of interest
    (independent across processors, the standard exponential-lifetime
    abstraction with a common mission time folded into [f_u]).

    An interval mapping enrols each used processor exactly once and
    every data set crosses every enrolled processor, so the mapping
    fails as soon as {e any} enrolled processor fails:

    {ul
    {- [mapping_success] is [Π_{u used} (1 - f_u)];}
    {- [mapping_failure] is [1 - mapping_success].}}

    Replication changes the formula — an interval survives while {e any}
    replica survives — see [Deal_reliability] in the deal library. *)

type t

val make : float array -> t
(** [make f] with [f.(u)] the failure probability of processor [u]
    (0-based). Raises [Invalid_argument] unless every entry is in
    [\[0,1\]] (NaN rejected). The array is copied. *)

val uniform : p:int -> float -> t
(** [p] processors, all with the same failure probability. *)

val p : t -> int
(** Number of processors covered. *)

val failure : t -> int -> float
(** [failure t u] — the failure probability of processor [u]. Raises
    [Invalid_argument] if [u] is out of range. *)

val success : t -> int -> float
(** [1 - failure t u]. *)

val group_failure : t -> int list -> float
(** Probability that {e every} processor of the list fails
    ([Π f_u] — a replica group is lost only when all replicas are).
    The empty list yields [1.] (an empty group provides no service). *)

val group_success : t -> int list -> float
(** Probability that {e no} processor of the list fails ([Π (1-f_u)]).
    The empty list yields [1.]. *)

val mapping_failure : t -> Mapping.t -> float
(** [1 - Π_{u used}(1 - f_u)] — raises [Invalid_argument] when the
    mapping references processors outside [0..p-1]. *)

val mapping_success : t -> Mapping.t -> float

val pp : Format.formatter -> t -> unit
(** E.g. ["[0.01; 0.05; 0.01]"]. *)

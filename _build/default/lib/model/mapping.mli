(** Interval mappings (paper §2, "Bi-criteria mapping problem").

    A mapping partitions the stages [\[1..n\]] into [m ≤ p] consecutive
    intervals and assigns interval [I_j] to a dedicated processor
    [alloc j]. Processors are enrolled at most once (a stage is mapped
    onto a single processor, and a processor executes a single interval).

    Values are immutable; the smart constructors enforce the structural
    invariants, so any [Mapping.t] in flight is well-formed with respect
    to its [n]. Whether all processor indices exist on a given platform
    is checked by {!valid_on}. *)

type t

val make : n:int -> (Interval.t * int) list -> t
(** [make ~n assignment] builds a mapping of a pipeline with [n] stages;
    [assignment] lists [(interval, processor)] pairs in pipeline order.
    Raises [Invalid_argument] if the intervals are not a partition of
    [\[1..n\]] in order, or if a processor index is negative or repeated. *)

val single : n:int -> proc:int -> t
(** The whole pipeline on one processor — the latency-optimal shape when
    [proc] is a fastest processor (Lemma 1). *)

val one_to_one : procs:int array -> t
(** [one_to_one ~procs] maps stage [k] onto [procs.(k-1)] ([n] distinct
    processors). *)

val of_cuts : n:int -> cuts:int list -> procs:int list -> t
(** [of_cuts ~n ~cuts ~procs] describes the partition by its internal cut
    positions: [cuts = [c_1; …; c_{m-1}]] strictly increasing with
    [1 ≤ c_i < n] produces intervals [\[1..c_1\], \[c_1+1..c_2\], …];
    [procs] lists the [m] processors in order. *)

val n : t -> int
(** Number of pipeline stages covered. *)

val m : t -> int
(** Number of intervals (= enrolled processors). *)

val interval : t -> int -> Interval.t
(** [interval t j] is [I_j], [0 ≤ j < m] (0-based interval index). *)

val proc : t -> int -> int
(** [proc t j] is the processor assigned to [I_j]. *)

val intervals : t -> (Interval.t * int) list
(** The assignment in pipeline order. *)

val procs : t -> int array
(** Enrolled processors in pipeline order (fresh array). *)

val proc_of_stage : t -> int -> int
(** [proc_of_stage t k] is the processor executing stage [k] (1-based). *)

val interval_of_proc : t -> int -> Interval.t option
(** The interval assigned to a given processor, if enrolled. *)

val uses : t -> int -> bool
(** [uses t u] is true when processor [u] is enrolled. *)

val replace : t -> j:int -> (Interval.t * int) list -> t
(** [replace t ~j parts] substitutes interval [j] by the given consecutive
    sub-assignment (used by the splitting heuristics). The parts must
    exactly cover [interval t j] in order, and newly enrolled processors
    must not collide with processors used elsewhere. *)

val valid_on : t -> Platform.t -> bool
(** All assigned processor indices exist on the platform. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** E.g. ["{[1..3]->P2, [4]->P0}"]. *)

(** Deterministic generation of the campaign's instance batches. *)

open Pipeline_model

val instances : Config.setup -> Instance.t list
(** The [pairs] random application/platform pairs of a setup. Instance
    [i] is drawn from an RNG stream derived from [(setup.seed, i)], so a
    batch is reproducible and insensitive to evaluation order. *)

val instance : Config.setup -> int -> Instance.t
(** The [i]-th instance of the batch (0-based). *)

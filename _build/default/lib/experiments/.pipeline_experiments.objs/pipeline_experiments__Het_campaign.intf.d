lib/experiments/het_campaign.mli: Campaign Instance Pipeline_model

lib/experiments/robustness.ml: Instance List Metrics Option Pipeline_core Pipeline_model Pipeline_sim Pipeline_util

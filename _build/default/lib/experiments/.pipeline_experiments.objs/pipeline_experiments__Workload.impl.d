lib/experiments/workload.ml: App_generator Config Hashtbl Instance List Pipeline_model Pipeline_util Platform_generator

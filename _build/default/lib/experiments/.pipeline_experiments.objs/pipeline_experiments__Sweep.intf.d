lib/experiments/sweep.mli: Instance Pipeline_core Pipeline_model Pipeline_util Registry

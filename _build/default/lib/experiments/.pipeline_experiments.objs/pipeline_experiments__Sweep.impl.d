lib/experiments/sweep.ml: Application Float Instance List Pipeline_core Pipeline_model Pipeline_util Platform Registry Solution Sp_mono_l

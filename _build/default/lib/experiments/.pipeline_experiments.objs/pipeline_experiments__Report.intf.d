lib/experiments/report.mli: Campaign Failure

lib/experiments/report.ml: Buffer Campaign Char Config Failure Filename List Pipeline_util Printf String

lib/experiments/config.ml: Pipeline_model Printf String

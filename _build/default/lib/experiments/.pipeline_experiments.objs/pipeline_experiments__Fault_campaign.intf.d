lib/experiments/fault_campaign.mli: Config

lib/experiments/campaign.mli: Config Pipeline_util

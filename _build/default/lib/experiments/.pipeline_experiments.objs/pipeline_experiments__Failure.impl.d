lib/experiments/failure.ml: Config Float Instance List Pipeline_core Pipeline_model Pipeline_util Printf Registry Workload

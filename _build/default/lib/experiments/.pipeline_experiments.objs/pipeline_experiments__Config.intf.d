lib/experiments/config.mli: Pipeline_model

lib/experiments/workload.mli: Config Instance Pipeline_model

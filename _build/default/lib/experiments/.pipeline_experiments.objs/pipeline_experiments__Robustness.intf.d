lib/experiments/robustness.mli: Instance Mapping Pipeline_core Pipeline_model Pipeline_util

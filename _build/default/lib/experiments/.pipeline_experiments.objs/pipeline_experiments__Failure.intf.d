lib/experiments/failure.mli: Config Instance Pipeline_core Pipeline_model Registry

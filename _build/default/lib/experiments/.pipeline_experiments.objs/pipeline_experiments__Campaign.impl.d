lib/experiments/campaign.ml: Config List Option Pipeline_core Pipeline_util Registry Sweep Workload

(** Extension campaign E5: the paper's experiments transposed to fully
    heterogeneous platforms (its §7 future work).

    Random E2-style applications on platforms with per-link bandwidths
    (integer speeds in [\[1,20\]], link bandwidths in [\[5,15\]] around
    the paper's [b = 10]); the four het splitting heuristics of
    {!Pipeline_het.Het_heuristics} are swept exactly like the paper's
    figures, and the communication-oblivious baseline anchors the
    comparison. *)

open Pipeline_model

val instances : ?pairs:int -> ?seed:int -> n:int -> int -> Instance.t list
(** [instances ~n p] — deterministic batch of fully heterogeneous
    instances. *)

val figure :
  ?pairs:int -> ?sweep_points:int -> ?seed:int -> n:int -> int -> Campaign.figure
(** Latency-versus-period series for the four het heuristics (labelled
    like the paper's legends), plus a single-point series for the
    balanced-chains baseline at its achieved objectives. *)

(** The full CLUSTER'07 simulation campaign: one entry per paper figure,
    plus Table 1 via {!Failure}. *)

val paper_figures :
  ?pairs:int -> ?sweep_points:int -> ?seed:int -> unit ->
  (string * Config.setup) list
(** The ten plots reported in the paper, keyed by their figure label:
    Fig. 2(a/b) = E1 with n = 10/40, Fig. 3(a/b) = E2 with n = 10/40,
    Fig. 4(a/b) = E3 with n = 5/20, Fig. 5(a/b) = E4 with n = 5/20 (all
    [p = 10]); Fig. 6(a) = E1 n = 40, Fig. 6(b) = E2 n = 40,
    Fig. 7(a) = E3 n = 10, Fig. 7(b) = E4 n = 40 (all [p = 100]). *)

type figure = {
  label : string;          (** e.g. ["Figure 2(a)"] *)
  setup : Config.setup;
  series : Pipeline_util.Series.t list;  (** one curve per heuristic *)
}

val figure : ?label:string -> Config.setup -> figure
(** Run the sweeps of all six heuristics for a setup. *)

val run_paper_figure :
  ?pairs:int -> ?sweep_points:int -> ?seed:int -> string -> figure option
(** Run a figure by its label (as listed by {!paper_figures});
    [None] for an unknown label. *)

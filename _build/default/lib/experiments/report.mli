(** Rendering and persistence of campaign results: gnuplot [.dat] files,
    CSV, and terminal ASCII plots, one artefact per reproduced figure or
    table. *)

val figure_to_ascii : Campaign.figure -> string
(** The latency-versus-period plot rendered for the terminal. *)

val figure_to_dat : Campaign.figure -> string
(** gnuplot blocks (one per heuristic). *)

val figure_to_csv : Campaign.figure -> string

val write_figure : dir:string -> Campaign.figure -> string list
(** Write [<dir>/<slug>.dat] and [<dir>/<slug>.csv]; returns the paths. *)

val write_table : dir:string -> Failure.table -> string list
(** Write the failure-threshold table as [.txt] and [.csv]. *)

val slug : string -> string
(** Filesystem-friendly name: lowercase, non-alphanumerics collapsed to
    ['-']. *)

(** Configuration of the simulation campaign (paper §5.1).

    Four experiment families over random applications and random
    communication-homogeneous platforms with [b = 10] and integer speeds
    in [\[1, 20\]]; every measurement point averages 50 random
    application/platform pairs. *)

type experiment = E1 | E2 | E3 | E4

val all_experiments : experiment list

val experiment_name : experiment -> string
(** ["E1"] … ["E4"]. *)

val experiment_title : experiment -> string
(** The paper's caption, e.g. ["balanced comm/comp, homogeneous
    communications"]. *)

val experiment_of_string : string -> experiment option

val app_spec : experiment -> n:int -> Pipeline_model.App_generator.spec
(** The δ/w distributions of the family. *)

type setup = {
  experiment : experiment;
  n : int;            (** stages *)
  p : int;            (** processors *)
  pairs : int;        (** random application/platform pairs per point *)
  sweep_points : int; (** thresholds per heuristic sweep *)
  seed : int;         (** campaign seed — the same seed reproduces the
                          same numbers bit-for-bit *)
  bandwidth : float;  (** common link bandwidth *)
}

val default_setup : ?pairs:int -> ?sweep_points:int -> ?seed:int -> experiment -> n:int -> p:int -> setup
(** Defaults: 50 pairs, 15 sweep points, seed 2007, [b = 10]. *)

val paper_stage_counts : experiment -> int * int
(** The two [n] values the paper plots for the family with [p = 10]
    (E1/E2: 10 and 40; E3/E4: 5 and 20). *)

val setup_label : setup -> string
(** E.g. ["E2 n=40 p=10"]. *)

module App_generator = Pipeline_model.App_generator

type experiment = E1 | E2 | E3 | E4

let all_experiments = [ E1; E2; E3; E4 ]

let experiment_name = function E1 -> "E1" | E2 -> "E2" | E3 -> "E3" | E4 -> "E4"

let experiment_title = function
  | E1 -> "balanced comm/comp, homogeneous communications"
  | E2 -> "balanced comm/comp, heterogeneous communications"
  | E3 -> "large computations"
  | E4 -> "small computations"

let experiment_of_string s =
  match String.lowercase_ascii s with
  | "e1" -> Some E1
  | "e2" -> Some E2
  | "e3" -> Some E3
  | "e4" -> Some E4
  | _ -> None

let app_spec experiment ~n =
  match experiment with
  | E1 -> App_generator.e1 ~n
  | E2 -> App_generator.e2 ~n
  | E3 -> App_generator.e3 ~n
  | E4 -> App_generator.e4 ~n

type setup = {
  experiment : experiment;
  n : int;
  p : int;
  pairs : int;
  sweep_points : int;
  seed : int;
  bandwidth : float;
}

let default_setup ?(pairs = 50) ?(sweep_points = 15) ?(seed = 2007) experiment
    ~n ~p =
  if n < 1 || p < 1 || pairs < 1 || sweep_points < 2 then
    invalid_arg "Config.default_setup: invalid parameters";
  { experiment; n; p; pairs; sweep_points; seed; bandwidth = 10. }

let paper_stage_counts = function
  | E1 | E2 -> (10, 40)
  | E3 | E4 -> (5, 20)

let setup_label s =
  Printf.sprintf "%s n=%d p=%d" (experiment_name s.experiment) s.n s.p

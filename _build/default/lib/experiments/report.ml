module U = Pipeline_util

let slug s =
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as l ->
        Buffer.add_char buf l;
        last_dash := false
      | _ ->
        if not !last_dash then begin
          Buffer.add_char buf '-';
          last_dash := true
        end)
    s;
  let out = Buffer.contents buf in
  if String.length out > 0 && out.[String.length out - 1] = '-' then
    String.sub out 0 (String.length out - 1)
  else out

let figure_to_ascii (fig : Campaign.figure) =
  let config =
    {
      U.Ascii_plot.default with
      U.Ascii_plot.title =
        Printf.sprintf "%s — %s (%s)" fig.Campaign.label
          (Config.setup_label fig.Campaign.setup)
          (Config.experiment_title fig.Campaign.setup.Config.experiment);
      x_label = "Period";
      y_label = "Latency";
    }
  in
  U.Ascii_plot.render ~config fig.Campaign.series

let figure_to_dat (fig : Campaign.figure) = U.Csv.dat_of_series fig.Campaign.series
let figure_to_csv (fig : Campaign.figure) = U.Csv.csv_of_series fig.Campaign.series

let write_figure ~dir (fig : Campaign.figure) =
  let base = Filename.concat dir (slug fig.Campaign.label) in
  let dat = base ^ ".dat" and csv = base ^ ".csv" in
  U.Csv.to_file dat (figure_to_dat fig);
  U.Csv.to_file csv (figure_to_csv fig);
  [ dat; csv ]

let write_table ~dir (table : Failure.table) =
  let name =
    Printf.sprintf "table1-%s-p%d"
      (slug (Config.experiment_name table.Failure.experiment))
      table.Failure.p
  in
  let base = Filename.concat dir name in
  let txt = base ^ ".txt" and csv = base ^ ".csv" in
  U.Csv.to_file txt (Failure.render table);
  let rows =
    List.map
      (fun (h, values) -> h :: List.map (Printf.sprintf "%.2f") values)
      table.Failure.rows
  in
  let header = "heuristic" :: List.map (Printf.sprintf "n=%d") table.Failure.ns in
  U.Csv.to_file csv (U.Csv.csv_of_rows ~header rows);
  [ txt; csv ]

(** Generic dynamic programming over (prefix of stages, set of used
    processors).

    On communication-homogeneous platforms the cost of an interval on a
    processor does not depend on where its neighbours run, so optimal
    interval mappings decompose along prefixes: the DP state is "first
    [k] stages mapped, processors of subset [S] used (each running one
    non-empty interval)". Exponential in [p] — this is the ground truth
    engine for validation-sized instances, matching the NP-hardness of
    the problem (Theorem 2).

    Two objectives are provided over a user-supplied interval cost:
    bottleneck (period) and sum-under-a-bottleneck-cap (latency under a
    period threshold). *)

type assignment = (Pipeline_model.Interval.t * int) list
(** Intervals in pipeline order with their processor. *)

val max_procs : int
(** Largest supported [p] (16): the tables hold [2^p · (n+1)] cells. *)

val minimise_bottleneck :
  n:int -> p:int -> cost:(d:int -> e:int -> u:int -> float) -> float * assignment
(** [minimise_bottleneck ~n ~p ~cost] minimises
    [max_j cost(d_j, e_j, u_j)] over all partitions of [\[1..n\]] into at
    most [p] intervals and injective processor assignments.
    Raises [Invalid_argument] when [n < 1] or [p < 1] or [p > max_procs]. *)

val minimise_sum_under_cap :
  n:int ->
  p:int ->
  cap_cost:(d:int -> e:int -> u:int -> float) ->
  sum_cost:(d:int -> e:int -> u:int -> float) ->
  cap:float ->
  (float * assignment) option
(** Minimise [Σ_j sum_cost(I_j, u_j)] subject to
    [cap_cost(I_j, u_j) ≤ cap] for every interval; [None] when no
    assignment satisfies the cap. *)

(** Polynomial exact solvers for {e fully homogeneous} platforms — the
    Subhlok–Vondran setting (PPoPP'95 / SPAA'96) that the paper extends.

    When all processors have the same speed, interval mappings no longer
    need a processor assignment (any [m ≤ p] distinct processors do), so
    the exponential subset DP collapses to a chains-style dynamic program
    over (prefix, number of intervals): [O(n²p)] for the period and for
    the latency under a period cap. These solvers are exact and fast —
    and double as an independent oracle for {!Bicriteria} on platforms
    with equal speeds, which the test suite exploits.

    All functions raise [Invalid_argument] if the platform's processors
    do not all have the same speed or the platform is not communication
    homogeneous. *)

open Pipeline_model
open Pipeline_core

val check_fully_homogeneous : Platform.t -> unit
(** Raises [Invalid_argument] unless all speeds and all bandwidths are
    equal. *)

val min_period : Instance.t -> Solution.t
(** Smallest achievable period, in [O(n²p)]. *)

val min_latency_under_period : Instance.t -> period:float -> Solution.t option
(** Smallest latency among mappings of period [≤ period], in [O(n²p)]. *)

val min_period_under_latency : Instance.t -> latency:float -> Solution.t option
(** Binary search over the [O(n²)] candidate periods on top of
    {!min_latency_under_period}. *)

val pareto : Instance.t -> Solution.t list
(** The exact period/latency front, sweeping candidate periods. *)

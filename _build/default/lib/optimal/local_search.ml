open Pipeline_model
open Pipeline_core

type objective = Period_then_latency | Latency_then_period

let key objective (sol : Solution.t) =
  match objective with
  | Period_then_latency -> (sol.Solution.period, sol.Solution.latency)
  | Latency_then_period -> (sol.Solution.latency, sol.Solution.period)

let neighbours (inst : Instance.t) mapping =
  let n = Mapping.n mapping in
  let p = Platform.p inst.platform in
  let pairs = Array.of_list (Mapping.intervals mapping) in
  let m = Array.length pairs in
  let rebuild pairs' =
    match Mapping.make ~n (Array.to_list pairs') with
    | mapping' -> Some mapping'
    | exception Invalid_argument _ -> None
  in
  let acc = ref [] in
  let push pairs' = match rebuild pairs' with Some m' -> acc := m' :: !acc | None -> () in
  (* Shifts of internal boundaries. *)
  for j = 0 to m - 2 do
    let iv_l, u_l = pairs.(j) and iv_r, u_r = pairs.(j + 1) in
    let d_l = Interval.first iv_l and e_l = Interval.last iv_l in
    let e_r = Interval.last iv_r in
    if Interval.length iv_l >= 2 then begin
      let pairs' = Array.copy pairs in
      pairs'.(j) <- (Interval.make ~first:d_l ~last:(e_l - 1), u_l);
      pairs'.(j + 1) <- (Interval.make ~first:e_l ~last:e_r, u_r);
      push pairs'
    end;
    if Interval.length iv_r >= 2 then begin
      let pairs' = Array.copy pairs in
      pairs'.(j) <- (Interval.make ~first:d_l ~last:(e_l + 1), u_l);
      pairs'.(j + 1) <- (Interval.make ~first:(e_l + 2) ~last:e_r, u_r);
      push pairs'
    end
  done;
  (* Processor swaps between enrolled intervals. *)
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let pairs' = Array.copy pairs in
      let iv_i, u_i = pairs.(i) and iv_j, u_j = pairs.(j) in
      pairs'.(i) <- (iv_i, u_j);
      pairs'.(j) <- (iv_j, u_i);
      push pairs'
    done
  done;
  (* Swap-in an unused processor. *)
  for j = 0 to m - 1 do
    for u = 0 to p - 1 do
      if not (Mapping.uses mapping u) then begin
        let pairs' = Array.copy pairs in
        let iv, _ = pairs.(j) in
        pairs'.(j) <- (iv, u);
        push pairs'
      end
    done
  done;
  (* Merge adjacent intervals (onto either processor). *)
  for j = 0 to m - 2 do
    let iv_l, u_l = pairs.(j) and iv_r, u_r = pairs.(j + 1) in
    let merged =
      Interval.make ~first:(Interval.first iv_l) ~last:(Interval.last iv_r)
    in
    List.iter
      (fun keep ->
        let pairs' =
          Array.append
            (Array.append (Array.sub pairs 0 j) [| (merged, keep) |])
            (Array.sub pairs (j + 2) (m - j - 2))
        in
        push pairs')
      [ u_l; u_r ]
  done;
  !acc

let improve ?(objective = Period_then_latency) ?(max_steps = 1000)
    ?(feasible = fun _ -> true) (inst : Instance.t) start =
  let rec descend steps (current : Solution.t) =
    if steps >= max_steps then current
    else begin
      let best_neighbour =
        List.fold_left
          (fun acc mapping ->
            let sol = Solution.of_mapping inst mapping in
            if not (feasible sol) then acc
            else
              match acc with
              | Some b when key objective b <= key objective sol -> acc
              | _ -> Some sol)
          None
          (neighbours inst current.Solution.mapping)
      in
      match best_neighbour with
      | Some sol when key objective sol < key objective current ->
        descend (steps + 1) sol
      | _ -> current
    end
  in
  descend 0 start

(** Anytime branch-and-bound period minimisation for communication-
    homogeneous platforms.

    The processor-subset DP ({!Bicriteria}) is exact but limited to
    [p ≤ 16]. This solver explores interval/processor assignments
    left-to-right with pruning, and is effective far beyond that:

    {ul
    {- {e speed symmetry}: equal-speed processors are interchangeable, so
       only one representative per distinct speed is branched on — with
       the paper's integer speeds in [\[1, 20\]], a [p = 100] platform
       branches over at most 20 choices per interval;}
    {- {e capacity bound}: the remaining stages need at least
       [W_rem / Σ free speeds] plus their unavoidable input transfer;}
    {- {e incumbent seeding} from the paper's splitting heuristic.}}

    The search is {e anytime}: it returns its best mapping when the node
    budget runs out, together with a flag telling whether optimality was
    proven (budget not exhausted). *)

open Pipeline_model
open Pipeline_core

type result = {
  solution : Solution.t;
  proven_optimal : bool;
  nodes : int;  (** nodes explored *)
}

val min_period : ?node_budget:int -> ?initial:Solution.t -> Instance.t -> result
(** [min_period inst] with a default budget of 1,000,000 nodes. [initial]
    seeds the incumbent (default: unconstrained splitting, falling back
    to the single fastest processor). Raises [Invalid_argument] on
    non-communication-homogeneous platforms. *)

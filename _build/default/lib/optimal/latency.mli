(** Optimal latency (Lemma 1): map the whole pipeline onto a fastest
    processor. Polynomial — in fact O(p). *)

val solve : Pipeline_model.Instance.t -> Pipeline_core.Solution.t
(** The latency-optimal mapping and its objectives. Works on any platform
    class: on fully heterogeneous platforms the candidate single-processor
    mappings are scored with the exact cost model and the best is kept
    (speed alone no longer decides, since I/O bandwidths may differ). *)

(** Exact polynomial solvers for {e one-to-one} mappings (paper §2),
    where every stage runs on its own processor (requires [n ≤ p]).

    With singleton intervals the cycle-time of stage [k] on processor [u]
    is fixed ([(δ_{k-1} + δ_k)/b + w_k/s_u] on a communication-homogeneous
    platform), so:

    {ul
    {- minimising the period is a {e bottleneck assignment} problem —
       solved by a binary search over the [O(np)] candidate cycle-times
       with a Hopcroft–Karp feasibility matching;}
    {- minimising the latency (or the latency under a period bound) is a
       {e min-sum assignment} problem — solved by the Hungarian
       algorithm.}}

    Both are polynomial: the NP-hardness of Theorem 2 comes from interval
    mappings, and this module makes that frontier concrete. Functions
    raise [Invalid_argument] on non-communication-homogeneous platforms
    or when [n > p]. *)

open Pipeline_model
open Pipeline_core

val min_period : Instance.t -> Solution.t
(** Optimal one-to-one period (bottleneck assignment). *)

val min_latency : Instance.t -> Solution.t
(** Optimal one-to-one latency (min-sum assignment). *)

val min_latency_under_period : Instance.t -> period:float -> Solution.t option
(** Smallest one-to-one latency among assignments whose every stage
    cycle-time is [≤ period]. *)

val pareto : Instance.t -> Solution.t list
(** Exact one-to-one period/latency front. *)

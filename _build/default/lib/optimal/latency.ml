open Pipeline_model

let solve (inst : Instance.t) =
  let n = Application.n inst.app in
  let best = ref None in
  for u = 0 to Platform.p inst.platform - 1 do
    let sol = Pipeline_core.Solution.of_mapping inst (Mapping.single ~n ~proc:u) in
    match !best with
    | Some b when b.Pipeline_core.Solution.latency <= sol.latency -> ()
    | _ -> best := Some sol
  done;
  Option.get !best

lib/optimal/subset_dp.mli: Pipeline_model

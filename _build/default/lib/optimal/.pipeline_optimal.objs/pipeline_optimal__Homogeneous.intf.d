lib/optimal/homogeneous.mli: Instance Pipeline_core Pipeline_model Platform Solution

lib/optimal/one_to_one.mli: Instance Pipeline_core Pipeline_model Solution

lib/optimal/subset_dp.ml: Array Float Pipeline_model Printf

lib/optimal/homogeneous.ml: Application Array Float Fun Instance List Mapping Pipeline_core Pipeline_model Platform Solution

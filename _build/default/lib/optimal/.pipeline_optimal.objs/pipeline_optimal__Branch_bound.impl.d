lib/optimal/branch_bound.ml: Application Array Float Hashtbl Instance Interval List Mapping Option Pipeline_core Pipeline_model Platform Solution Sp_mono_l

lib/optimal/exhaustive.ml: Application Array Instance List Mapping Pipeline_core Pipeline_model Platform Solution

lib/optimal/bicriteria.ml: Application Array Instance List Mapping Pipeline_core Pipeline_model Platform Solution Subset_dp

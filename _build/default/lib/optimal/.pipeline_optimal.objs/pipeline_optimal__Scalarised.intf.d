lib/optimal/scalarised.mli: Instance Pipeline_core Pipeline_model Registry Solution

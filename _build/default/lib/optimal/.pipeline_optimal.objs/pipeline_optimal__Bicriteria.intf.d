lib/optimal/bicriteria.mli: Instance Pipeline_core Pipeline_model Solution

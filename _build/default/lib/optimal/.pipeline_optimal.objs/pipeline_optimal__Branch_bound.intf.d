lib/optimal/branch_bound.mli: Instance Pipeline_core Pipeline_model Solution

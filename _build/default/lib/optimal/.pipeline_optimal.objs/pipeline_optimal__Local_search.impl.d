lib/optimal/local_search.ml: Array Instance Interval List Mapping Pipeline_core Pipeline_model Platform Solution

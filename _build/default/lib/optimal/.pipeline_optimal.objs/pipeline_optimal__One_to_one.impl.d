lib/optimal/one_to_one.ml: Application Array Float Fun Instance List Mapping Pipeline_core Pipeline_model Pipeline_util Platform Solution

lib/optimal/local_search.mli: Instance Mapping Pipeline_core Pipeline_model Solution

lib/optimal/latency.ml: Application Instance Mapping Option Pipeline_core Pipeline_model Platform

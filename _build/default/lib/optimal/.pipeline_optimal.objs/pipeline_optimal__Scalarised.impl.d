lib/optimal/scalarised.ml: Bicriteria Instance List Option Pipeline_core Pipeline_model Platform Registry Solution

lib/optimal/exhaustive.mli: Instance Mapping Pipeline_core Pipeline_model Solution

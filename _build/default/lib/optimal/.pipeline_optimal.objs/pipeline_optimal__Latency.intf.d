lib/optimal/latency.mli: Pipeline_core Pipeline_model

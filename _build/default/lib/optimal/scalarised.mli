(** Scalarised (weighted-sum) objective: the paper's introduction also
    allows optimising "a combination" of throughput and latency.

    For a weight [alpha ∈ [0,1]] the objective is
    [alpha·period + (1-alpha)·latency]. Every minimiser of a positive
    weighted sum lies on the period/latency Pareto front, so the exact
    solver scans the front; the heuristic one scans the solutions a
    period-fixed heuristic produces along a threshold sweep. *)

open Pipeline_model
open Pipeline_core

val value : alpha:float -> Solution.t -> float
(** [alpha·period + (1-alpha)·latency]. *)

val best_of : alpha:float -> Solution.t list -> Solution.t option
(** Smallest scalarised value in a list ([None] on empty input). Raises
    [Invalid_argument] when [alpha] is outside [\[0,1\]]. *)

val optimal : Instance.t -> alpha:float -> Solution.t
(** Exact optimum (exponential in [p], via {!Bicriteria.pareto}). *)

val heuristic :
  ?heuristic:Registry.info -> ?points:int -> Instance.t -> alpha:float -> Solution.t
(** Polynomial: sweep [points] (default 20) period thresholds between the
    instance's trivial bounds with a period-fixed heuristic (default H1)
    and keep the best scalarised solution. Always succeeds: the
    single-processor threshold is feasible. Raises [Invalid_argument] on
    a latency-fixed [heuristic]. *)

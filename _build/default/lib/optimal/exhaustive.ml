open Pipeline_model
open Pipeline_core

let rec binomial n k =
  if k < 0 || k > n then 0.
  else if k = 0 || k = n then 1.
  else binomial (n - 1) (k - 1) *. float_of_int n /. float_of_int k

let count_mappings ~n ~p =
  let total = ref 0. in
  for m = 1 to min n p do
    let partitions = binomial (n - 1) (m - 1) in
    let arrangements = ref 1. in
    for i = 0 to m - 1 do
      arrangements := !arrangements *. float_of_int (p - i)
    done;
    total := !total +. (partitions *. !arrangements)
  done;
  !total

let guard = 1e7

let iter_mappings (inst : Instance.t) f =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_mappings ~n ~p > guard then
    invalid_arg "Exhaustive.iter_mappings: instance too large to enumerate";
  let with_cuts cuts =
    let m = List.length cuts + 1 in
    let used = Array.make p false in
    let rec assign k procs_rev =
      if k = m then
        f (Mapping.of_cuts ~n ~cuts ~procs:(List.rev procs_rev))
      else
        for u = 0 to p - 1 do
          if not used.(u) then begin
            used.(u) <- true;
            assign (k + 1) (u :: procs_rev);
            used.(u) <- false
          end
        done
    in
    assign 0 []
  in
  (* Choose the internal cut positions: every subset of [1..n-1] of size
     m-1 for every m up to min(n, p). *)
  let rec choose_cuts start chosen_rev remaining =
    if remaining = 0 then with_cuts (List.rev chosen_rev)
    else
      for c = start to n - 1 - (remaining - 1) do
        choose_cuts (c + 1) (c :: chosen_rev) (remaining - 1)
      done
  in
  for m = 1 to min n p do
    choose_cuts 1 [] (m - 1)
  done

let fold_solutions inst f init =
  let acc = ref init in
  iter_mappings inst (fun mapping -> acc := f !acc (Solution.of_mapping inst mapping));
  !acc

let best_by measure inst =
  match
    fold_solutions inst
      (fun acc sol ->
        match acc with
        | Some best when measure best <= measure sol -> acc
        | _ -> Some sol)
      None
  with
  | Some sol -> sol
  | None -> assert false (* at least the single-interval mappings exist *)

let min_period inst = best_by (fun s -> s.Solution.period) inst
let min_latency inst = best_by (fun s -> s.Solution.latency) inst

let min_latency_under_period inst ~period =
  fold_solutions inst
    (fun acc sol ->
      if not (Solution.respects_period sol period) then acc
      else
        match acc with
        | Some best when best.Solution.latency <= sol.Solution.latency -> acc
        | _ -> Some sol)
    None

let min_period_under_latency inst ~latency =
  fold_solutions inst
    (fun acc sol ->
      if not (Solution.respects_latency sol latency) then acc
      else
        match acc with
        | Some best when best.Solution.period <= sol.Solution.period -> acc
        | _ -> Some sol)
    None

let pareto inst =
  let points =
    fold_solutions inst (fun acc sol -> sol :: acc) []
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best_latency = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best_latency then
        sol :: prune sol.Solution.latency rest
      else prune best_latency rest
  in
  prune infinity sorted

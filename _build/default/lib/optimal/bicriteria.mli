(** Exact bi-criteria solvers for communication-homogeneous platforms.

    Exponential in [p] (processor-subset DP, see {!Subset_dp}); intended
    as ground truth for validation-sized instances — the problems are
    NP-hard (Theorem 2), so no polynomial exact algorithm is expected.
    All functions raise [Invalid_argument] on non-communication-
    homogeneous platforms or [p > Subset_dp.max_procs]. *)

open Pipeline_model
open Pipeline_core

val min_period : Instance.t -> Solution.t
(** The mapping with the smallest achievable period (no latency
    constraint). *)

val min_latency_under_period : Instance.t -> period:float -> Solution.t option
(** Smallest latency among mappings of period [≤ period]; [None] when the
    period threshold itself is unachievable. *)

val min_period_under_latency : Instance.t -> latency:float -> Solution.t option
(** Smallest period among mappings of latency [≤ latency]. Implemented by
    a binary search over the O(n²p) candidate periods, re-solving
    {!min_latency_under_period} at each probe. *)

val pareto : Instance.t -> Solution.t list
(** The full period/latency Pareto front, sorted by increasing period
    (hence decreasing latency). Obtained by sweeping the candidate
    periods; each front point is an optimal trade-off. *)

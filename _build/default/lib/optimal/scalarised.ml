open Pipeline_model
open Pipeline_core

let check_alpha alpha =
  if not (alpha >= 0. && alpha <= 1.) then
    invalid_arg "Scalarised: alpha must be in [0,1]"

let value ~alpha (sol : Solution.t) =
  (alpha *. sol.Solution.period) +. ((1. -. alpha) *. sol.Solution.latency)

let best_of ~alpha solutions =
  check_alpha alpha;
  match solutions with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc sol -> if value ~alpha sol < value ~alpha acc then sol else acc)
         first rest)

let optimal inst ~alpha =
  check_alpha alpha;
  match best_of ~alpha (Bicriteria.pareto inst) with
  | Some sol -> sol
  | None -> assert false (* the front is never empty *)

let default_heuristic () = List.hd Registry.all (* H1, Sp mono P *)

let heuristic ?heuristic:info ?(points = 20) inst ~alpha =
  check_alpha alpha;
  let info = Option.value info ~default:(default_heuristic ()) in
  if info.Registry.kind <> Registry.Period_fixed then
    invalid_arg "Scalarised.heuristic: requires a period-fixed heuristic";
  let hi = Instance.single_proc_period inst in
  (* A generous lower anchor; infeasible thresholds simply yield no
     solution and drop out. *)
  let lo = hi /. float_of_int (max 1 (Platform.p inst.platform)) in
  let thresholds =
    List.init (max 2 points) (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (points - 1))))
  in
  let solutions =
    List.filter_map (fun t -> info.Registry.solve inst ~threshold:t) thresholds
  in
  match best_of ~alpha solutions with
  | Some sol -> sol
  | None ->
    (* The single-processor threshold is always feasible, so this only
       happens if [thresholds] missed it by rounding; fall back. *)
    Solution.of_mapping inst (Instance.single_proc_mapping inst)

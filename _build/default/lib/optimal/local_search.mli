(** Local-search polishing of interval mappings.

    The paper's heuristics are constructive and greedy; a cheap
    post-optimisation pass often recovers part of the gap to the optimum.
    The neighbourhood contains three move families:

    {ul
    {- {e shift}: move an interval boundary one stage left or right;}
    {- {e swap}: exchange the processors of two enrolled intervals;}
    {- {e swap-in}: replace an enrolled processor by an unused one;}
    {- {e merge}: fuse two adjacent intervals onto one of their two
       processors (freeing the other).}}

    {!improve} runs steepest-descent hill climbing under a lexicographic
    objective chosen by the caller (period first or latency first) with
    an optional feasibility constraint; it never worsens the objective
    and terminates because every accepted move strictly improves it.
    Communication-homogeneous and fully heterogeneous platforms are both
    supported (moves are scored with the full cost model). *)

open Pipeline_model
open Pipeline_core

type objective =
  | Period_then_latency   (** minimise period; break ties by latency *)
  | Latency_then_period

val neighbours : Instance.t -> Mapping.t -> Mapping.t list
(** All mappings one move away (valid by construction). *)

val improve :
  ?objective:objective ->
  ?max_steps:int ->
  ?feasible:(Solution.t -> bool) ->
  Instance.t ->
  Solution.t ->
  Solution.t
(** Steepest descent from a solution. [feasible] (default: accept all)
    filters candidate moves — e.g. keep [respects_period] while polishing
    latency. [max_steps] (default 1000) bounds the descent. The result is
    never worse than the input under the chosen objective and satisfies
    [feasible] whenever the input does. *)

(** Splitting-and-dealing heuristic: the paper's H1/H4 pair extended with
    replication moves (the §7 "deal skeleton" perspective, implemented).

    The driver keeps the paper's skeleton — start from the fastest single
    processor, repeatedly improve the bottleneck interval with the next
    fastest unused processor — but now has two moves:

    {ul
    {- {e split} the bottleneck interval in two (exactly H1's move;
       restricted to unreplicated intervals);}
    {- {e replicate} the bottleneck interval: enrol the processor as an
       extra round-robin replica, dividing the interval's period
       contribution by its replica count without touching the partition —
       the only escape when the bottleneck is a single
       computation-heavy stage, where the paper's heuristics are stuck.}}

    At each step the move with the lowest resulting period is applied
    (ties: lowest latency); both moves consume one new processor, so the
    loop terminates after at most [p - 1] steps. *)

open Pipeline_model

type solution = {
  mapping : Deal_mapping.t;
  period : float;   (** round-robin deal period *)
  latency : float;
}

val minimise_latency_under_period : Instance.t -> period:float -> solution option
(** Split/replicate while the period exceeds the threshold. *)

val minimise_period_under_latency : Instance.t -> latency:float -> solution option
(** Split/replicate while the period improves within the latency budget. *)

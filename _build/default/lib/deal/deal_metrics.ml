open Pipeline_model

let bandwidth_of (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Deal_metrics: requires a comm-homogeneous platform";
  Platform.io_bandwidth inst.platform 0

let check (inst : Instance.t) mapping =
  if Deal_mapping.n mapping <> Application.n inst.app then
    invalid_arg "Deal_metrics: mapping and application disagree on n";
  if not (Deal_mapping.valid_on mapping inst.platform) then
    invalid_arg "Deal_metrics: mapping references processors outside the platform"

let unchecked_cycle (inst : Instance.t) b mapping ~j ~u =
  let iv = Deal_mapping.interval mapping j in
  let d = Interval.first iv and e = Interval.last iv in
  (Application.delta inst.app (d - 1) /. b)
  +. (Application.work_sum inst.app d e /. Platform.speed inst.platform u)
  +. (Application.delta inst.app e /. b)

let cycle_time inst mapping ~j ~u =
  check inst mapping;
  let b = bandwidth_of inst in
  if j < 0 || j >= Deal_mapping.m mapping then
    invalid_arg "Deal_metrics.cycle_time: interval out of range";
  if not (List.mem u (Deal_mapping.replicas mapping j)) then
    invalid_arg "Deal_metrics.cycle_time: processor is not a replica of the interval";
  unchecked_cycle inst b mapping ~j ~u

let fold_intervals inst mapping f init =
  check inst mapping;
  let b = bandwidth_of inst in
  let acc = ref init in
  for j = 0 to Deal_mapping.m mapping - 1 do
    let cycles =
      List.map
        (fun u -> unchecked_cycle inst b mapping ~j ~u)
        (Deal_mapping.replicas mapping j)
    in
    acc := f !acc j cycles
  done;
  !acc

let period inst mapping =
  fold_intervals inst mapping
    (fun acc j cycles ->
      let r = float_of_int (Deal_mapping.replication mapping j) in
      let worst = List.fold_left Float.max neg_infinity cycles in
      Float.max acc (worst /. r))
    neg_infinity

let period_weighted inst mapping =
  fold_intervals inst mapping
    (fun acc _j cycles ->
      let rate = List.fold_left (fun s c -> s +. (1. /. c)) 0. cycles in
      Float.max acc (1. /. rate))
    neg_infinity

let latency inst mapping =
  let b = bandwidth_of inst in
  let app = inst.app in
  let total =
    fold_intervals inst mapping
      (fun acc j cycles ->
        (* Worst replica's input + compute: its cycle minus the interval's
           output transfer (identical for all replicas on comm-hom). *)
        let iv = Deal_mapping.interval mapping j in
        let out = Application.delta app (Interval.last iv) /. b in
        let worst = List.fold_left Float.max neg_infinity cycles in
        acc +. (worst -. out))
      0.
  in
  total +. (Application.delta app (Application.n app) /. b)

type summary = { period : float; latency : float; processors : int }

let summary inst mapping =
  {
    period = period inst mapping;
    latency = latency inst mapping;
    processors = List.length (Deal_mapping.processors mapping);
  }

let consistent_with_plain (inst : Instance.t) plain =
  let deal = Deal_mapping.of_mapping plain in
  let eq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a) in
  eq (period inst deal) (Metrics.period inst.app inst.platform plain)
  && eq (period_weighted inst deal) (Metrics.period inst.app inst.platform plain)
  && eq (latency inst deal) (Metrics.latency inst.app inst.platform plain)

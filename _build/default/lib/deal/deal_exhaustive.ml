open Pipeline_model

(* Mappings where interval j gets a non-empty subset S_j of processors,
   the S_j pairwise disjoint. Bounded by Σ_m C(n-1, m-1) · (p+1)^p as a
   crude over-estimate; we compute a tighter product bound below. *)
let count_estimate ~n ~p =
  (* Each of the ≤ min(n,p) intervals picks a non-empty subset of the
     remaining processors: bound by (2^p)^m summed over partition
     counts. Crude but monotone — good enough for a guard. *)
  let rec binom n k =
    if k < 0 || k > n then 0.
    else if k = 0 || k = n then 1.
    else binom (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let total = ref 0. in
  for m = 1 to min n p do
    total := !total +. (binom (n - 1) (m - 1) *. (2. ** float_of_int (p * m)))
  done;
  !total

let guard = 1e6

let iter (inst : Instance.t) consider =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_estimate ~n ~p > guard then
    invalid_arg "Deal_exhaustive.iter: instance too large to enumerate";
  (* Non-empty subsets of the free processor bitmask. *)
  let subsets_of mask =
    let rec submasks s acc = if s = 0 then acc else submasks ((s - 1) land mask) (s :: acc) in
    submasks mask []
  in
  let procs_of_mask mask =
    let rec collect u acc =
      if u >= p then List.rev acc
      else collect (u + 1) (if mask land (1 lsl u) <> 0 then u :: acc else acc)
    in
    collect 0 []
  in
  let rec assign d free acc =
    if d > n then consider (Deal_mapping.make ~n (List.rev acc))
    else
      for e = d to n do
        List.iter
          (fun subset ->
            assign (e + 1)
              (free lxor subset)
              ((Interval.make ~first:d ~last:e, procs_of_mask subset) :: acc))
          (subsets_of free)
      done
  in
  assign 1 ((1 lsl p) - 1) []

let min_period (inst : Instance.t) =
  let best = ref None in
  let consider mapping =
    let s = Deal_metrics.summary inst mapping in
    let candidate =
      {
        Deal_heuristic.mapping;
        period = s.Deal_metrics.period;
        latency = s.Deal_metrics.latency;
      }
    in
    match !best with
    | Some b
      when b.Deal_heuristic.period < candidate.Deal_heuristic.period
           || (b.Deal_heuristic.period = candidate.Deal_heuristic.period
              && b.Deal_heuristic.latency <= candidate.Deal_heuristic.latency) ->
      ()
    | _ -> best := Some candidate
  in
  iter inst consider;
  match !best with
  | Some sol -> sol
  | None -> assert false (* the single-interval single-replica mapping exists *)

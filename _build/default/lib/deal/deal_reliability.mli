(** Reliability of deal mappings — replication as fault tolerance.

    Under the deal skeleton an interval is served by a replica set
    [R_j]; the interval is lost only when {e every} replica fails, so
    with independent per-processor failure probabilities [f_u]
    ({!Pipeline_model.Reliability}):

    {ul
    {- [interval_failure j = Π_{u∈R_j} f_u];}
    {- [failure = 1 - Π_j (1 - interval_failure j)].}}

    On an unreplicated deal mapping this degenerates to the plain
    {!Pipeline_model.Reliability.mapping_failure} — a bridge the test
    suite checks. Replicating any interval can only decrease the
    failure probability (strictly, when the added processor is not
    certain to fail and the interval was not already safe).

    Note the model charges {e availability}, not performance: a deal
    whose replica dies degrades to the surviving replicas (the period
    deteriorates towards the unreplicated one), which is precisely why
    the tri-criteria heuristic ([Ft_heuristic]) checks the period bound
    on every replica subset it commits to. *)

open Pipeline_model

val interval_failure : Reliability.t -> Deal_mapping.t -> j:int -> float
(** [Π_{u∈R_j} f_u] for 0-based interval [j]. *)

val failure : Reliability.t -> Deal_mapping.t -> float
(** [1 - Π_j (1 - interval_failure j)]. Raises [Invalid_argument] when
    the deal mapping enrols processors outside the reliability vector. *)

val success : Reliability.t -> Deal_mapping.t -> float
(** [1 - failure]. *)

val agrees_with_plain : Reliability.t -> Mapping.t -> bool
(** Sanity bridge: embedding a plain mapping
    ({!Deal_mapping.of_mapping}) and evaluating {!failure} matches
    {!Pipeline_model.Reliability.mapping_failure} up to rounding. *)

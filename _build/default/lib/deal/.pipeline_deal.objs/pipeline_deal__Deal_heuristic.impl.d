lib/deal/deal_heuristic.ml: Application Array Deal_mapping Deal_metrics Float Instance Interval List Mapping Pipeline_model Platform

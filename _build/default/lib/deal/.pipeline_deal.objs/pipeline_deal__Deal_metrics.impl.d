lib/deal/deal_metrics.ml: Application Deal_mapping Float Instance Interval List Metrics Pipeline_model Platform

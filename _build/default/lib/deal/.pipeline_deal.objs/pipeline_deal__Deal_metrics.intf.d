lib/deal/deal_metrics.mli: Deal_mapping Instance Mapping Pipeline_model

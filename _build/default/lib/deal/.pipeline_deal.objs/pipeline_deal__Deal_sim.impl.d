lib/deal/deal_sim.ml: Application Array Deal_mapping Float Instance Interval Pipeline_model Platform

lib/deal/deal_heuristic.mli: Deal_mapping Instance Pipeline_model

lib/deal/deal_reliability.ml: Deal_mapping Float List Pipeline_model Reliability

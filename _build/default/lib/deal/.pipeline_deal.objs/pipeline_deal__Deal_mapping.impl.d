lib/deal/deal_mapping.ml: Array Format Hashtbl Interval List Mapping Pipeline_model Platform Printf String

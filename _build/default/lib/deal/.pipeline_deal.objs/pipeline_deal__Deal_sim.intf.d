lib/deal/deal_sim.mli: Deal_mapping Instance Pipeline_model

lib/deal/deal_mapping.mli: Format Interval Mapping Pipeline_model Platform

lib/deal/deal_exhaustive.mli: Deal_heuristic Instance Pipeline_model

lib/deal/deal_exhaustive.mli: Deal_heuristic Deal_mapping Instance Pipeline_model

lib/deal/deal_exhaustive.ml: Application Deal_heuristic Deal_mapping Deal_metrics Instance Interval List Pipeline_model Platform

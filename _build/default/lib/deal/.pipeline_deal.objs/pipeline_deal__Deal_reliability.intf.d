lib/deal/deal_reliability.mli: Deal_mapping Mapping Pipeline_model Reliability

(** Operational simulation of deal mappings (one-port, no overlap,
    strict round-robin dealing).

    Extends the model of {!Pipeline_sim.Runner}: data set [t] is handled,
    in interval [j], by replica [t mod r_j]; the boundary transfer is a
    rendezvous between the upstream replica that produced the data set
    and the downstream replica that will consume it. Used to check the
    analytic round-robin period of {!Deal_metrics} against an actual
    execution. *)

open Pipeline_model

type result = {
  output_completions : float array; (** per data set *)
  steady_period : float;            (** slope over the second half *)
  first_latency : float;
  max_latency : float;
}

val run : Instance.t -> Deal_mapping.t -> datasets:int -> result
(** Raises [Invalid_argument] when [datasets < 1] or the mapping does not
    fit the instance (communication-homogeneous platforms only, as in
    {!Deal_metrics}). *)

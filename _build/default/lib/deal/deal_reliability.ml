open Pipeline_model

let interval_failure rel deal ~j =
  Reliability.group_failure rel (Deal_mapping.replicas deal j)

let failure rel deal =
  (* Validate enrolment eagerly so the error names this entry point. *)
  List.iter
    (fun u ->
      if u < 0 || u >= Reliability.p rel then
        invalid_arg "Deal_reliability.failure: processor out of range")
    (Deal_mapping.processors deal);
  let survive_all = ref 1. in
  for j = 0 to Deal_mapping.m deal - 1 do
    survive_all := !survive_all *. (1. -. interval_failure rel deal ~j)
  done;
  1. -. !survive_all

let success rel deal = 1. -. failure rel deal

let agrees_with_plain rel mapping =
  let via_deal = failure rel (Deal_mapping.of_mapping mapping) in
  let direct = Reliability.mapping_failure rel mapping in
  Float.abs (via_deal -. direct) <= 1e-12 *. Float.max 1. (Float.abs direct)

lib/chains/probe.ml: List Partition Prefix

lib/chains/prefix.mli:

lib/chains/reduction.mli: Hetero

lib/chains/approx.mli: Partition

lib/chains/probe.mli: Partition Prefix

lib/chains/partition.mli: Format Pipeline_model Prefix

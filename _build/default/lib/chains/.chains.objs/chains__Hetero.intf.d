lib/chains/hetero.mli: Partition

lib/chains/exact.ml: Array List Prefix Probe

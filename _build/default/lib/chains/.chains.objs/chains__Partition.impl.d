lib/chains/partition.ml: Array Float Format List Pipeline_model Prefix String

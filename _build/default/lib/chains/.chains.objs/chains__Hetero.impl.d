lib/chains/hetero.ml: Array Exact Float Hashtbl List Partition Pipeline_model Prefix Printf

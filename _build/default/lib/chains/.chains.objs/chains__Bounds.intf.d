lib/chains/bounds.mli: Prefix

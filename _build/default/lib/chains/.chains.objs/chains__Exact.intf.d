lib/chains/exact.mli: Partition Prefix

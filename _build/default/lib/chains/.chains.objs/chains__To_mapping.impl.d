lib/chains/to_mapping.ml: Array Hetero List Partition Pipeline_model

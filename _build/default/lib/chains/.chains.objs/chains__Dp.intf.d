lib/chains/dp.mli: Partition

lib/chains/to_mapping.mli: Hetero Pipeline_model Prefix

lib/chains/nicol.ml: Array Float List Partition Prefix

lib/chains/reduction.ml: Array Hetero List Pipeline_model

lib/chains/approx.ml: Bounds Float Partition Prefix Probe

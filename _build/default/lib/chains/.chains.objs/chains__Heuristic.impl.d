lib/chains/heuristic.ml: Float List Partition Prefix

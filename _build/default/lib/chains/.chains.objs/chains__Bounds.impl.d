lib/chains/bounds.ml: Float Partition Prefix Probe

lib/chains/prefix.ml: Array Float

lib/chains/nicol.mli: Partition

lib/chains/heuristic.mli: Partition

lib/chains/dp.ml: Array Float Partition Prefix

module Interval = Pipeline_model.Interval

type solution = {
  bottleneck : float;
  partition : Partition.t;
  assignment : int array;
}

let check_inputs a speeds =
  if Array.length a = 0 then invalid_arg "Hetero: empty chain";
  if Array.length speeds = 0 then invalid_arg "Hetero: no speeds";
  Array.iter
    (fun s ->
      if not (Float.is_finite s) || s <= 0. then
        invalid_arg "Hetero: speeds must be finite and > 0")
    speeds

let objective a ~speeds sol =
  let prefix = Prefix.make a in
  let per_interval = Array.map (fun u -> speeds.(u)) sol.assignment in
  Partition.weighted_bottleneck prefix ~speeds:per_interval sol.partition

let is_valid ~n ~speeds sol =
  let p = Array.length speeds in
  let m = Array.length sol.partition in
  Partition.is_valid ~n sol.partition
  && Array.length sol.assignment = m
  && Array.for_all (fun u -> u >= 0 && u < p) sol.assignment
  &&
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun u ->
      if Hashtbl.mem seen u then false
      else begin
        Hashtbl.add seen u ();
        true
      end)
    sol.assignment

let max_subset_procs = 16

(* Shared subset DP. [bound], when finite, prunes transitions whose cost
   exceeds it (the decision variant). Returns the best bottleneck over all
   processor subsets together with the reconstruction tables. *)
let subset_dp a speeds ~bound =
  check_inputs a speeds;
  let p = Array.length speeds in
  if p > max_subset_procs then
    invalid_arg
      (Printf.sprintf "Hetero.exact_dp: at most %d speeds (got %d)"
         max_subset_procs p);
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  let size = 1 lsl p in
  let best = Array.make_matrix size (n + 1) infinity in
  let parent_cut = Array.make_matrix size (n + 1) (-1) in
  let parent_proc = Array.make_matrix size (n + 1) (-1) in
  best.(0).(0) <- 0.;
  (* Process subsets in increasing popcount order implicitly: any S is
     reached from S \ {u}, whose integer value is smaller, so a plain
     ascending loop respects the dependency order. *)
  for set = 1 to size - 1 do
    let count = ref 0 in
    for u = 0 to p - 1 do
      if set land (1 lsl u) <> 0 then incr count
    done;
    let intervals = !count in
    if intervals <= n then
      for k = intervals to n do
        (* Last interval is (i+1 .. k) on some processor u of the set. *)
        for u = 0 to p - 1 do
          if set land (1 lsl u) <> 0 then begin
            let rest = set lxor (1 lsl u) in
            for i = intervals - 1 to k - 1 do
              let prev = best.(rest).(i) in
              if prev < infinity then begin
                let load = Prefix.sum prefix (i + 1) k /. speeds.(u) in
                let cost = Float.max prev load in
                if cost < best.(set).(k) && cost <= bound then begin
                  best.(set).(k) <- cost;
                  parent_cut.(set).(k) <- i;
                  parent_proc.(set).(k) <- u
                end
              end
            done
          end
        done
      done
  done;
  (best, parent_cut, parent_proc)

let reconstruct best parent_cut parent_proc ~n =
  (* Pick the best subset at k = n, then walk parents back to (∅, 0). *)
  let size = Array.length best in
  let best_set = ref (-1) and best_val = ref infinity in
  for set = 1 to size - 1 do
    if best.(set).(n) < !best_val then begin
      best_val := best.(set).(n);
      best_set := set
    end
  done;
  if !best_set < 0 then None
  else begin
    let rec walk set k acc_iv acc_proc =
      if k = 0 then (acc_iv, acc_proc)
      else
        let i = parent_cut.(set).(k) and u = parent_proc.(set).(k) in
        let iv = Interval.make ~first:(i + 1) ~last:k in
        walk (set lxor (1 lsl u)) i (iv :: acc_iv) (u :: acc_proc)
    in
    let ivs, procs = walk !best_set n [] [] in
    Some
      {
        bottleneck = !best_val;
        partition = Array.of_list ivs;
        assignment = Array.of_list procs;
      }
  end

let exact_dp a ~speeds =
  let best, pc, pp = subset_dp a speeds ~bound:infinity in
  match reconstruct best pc pp ~n:(Array.length a) with
  | Some sol -> sol
  | None -> assert false (* a single interval on any speed is feasible *)

let decision a ~speeds ~bound =
  if bound < 0. then None
  else
    let best, pc, pp = subset_dp a speeds ~bound in
    match reconstruct best pc pp ~n:(Array.length a) with
    | Some sol when sol.bottleneck <= bound -> Some sol
    | _ -> None

let by_decreasing_speed speeds =
  let idx = Array.init (Array.length speeds) (fun u -> u) in
  Array.stable_sort
    (fun u v ->
      match compare speeds.(v) speeds.(u) with 0 -> compare u v | c -> c)
    idx;
  idx

let greedy a ~speeds ~bound =
  check_inputs a speeds;
  if bound < 0. then None
  else begin
    let prefix = Prefix.make a in
    let n = Prefix.n prefix in
    let order = by_decreasing_speed speeds in
    let rec consume rank from acc_iv acc_proc =
      if from > n then
        Some
          {
            bottleneck = 0.; (* recomputed below *)
            partition = Array.of_list (List.rev acc_iv);
            assignment = Array.of_list (List.rev acc_proc);
          }
      else if rank >= Array.length order then None
      else begin
        let u = order.(rank) in
        let budget = bound *. speeds.(u) in
        let e = Prefix.longest_fitting prefix ~from ~budget in
        if e < from then
          (* Even one element overflows the fastest remaining speed:
             slower speeds cannot do better. *)
          None
        else
          consume (rank + 1) (e + 1)
            (Interval.make ~first:from ~last:e :: acc_iv)
            (u :: acc_proc)
      end
    in
    match consume 0 1 [] [] with
    | None -> None
    | Some sol ->
      let per_interval = Array.map (fun u -> speeds.(u)) sol.assignment in
      let bottleneck =
        Partition.weighted_bottleneck prefix ~speeds:per_interval sol.partition
      in
      Some { sol with bottleneck }
  end

let binary_search_greedy a ~speeds =
  check_inputs a speeds;
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  (* Candidate bottlenecks: every interval sum divided by every speed. *)
  let sums = Exact.candidates prefix in
  let cand =
    Array.concat
      (List.map
         (fun s -> Array.map (fun v -> v /. s) sums)
         (Array.to_list speeds))
  in
  Array.sort compare cand;
  let feasible bound = greedy a ~speeds ~bound <> None in
  let lo = ref 0 and hi = ref (Array.length cand - 1) in
  (* The largest candidate is total/min-speed, which the greedy always
     accepts (the fastest processor alone fits); still, guard with a
     fallback below. *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if feasible cand.(mid) then hi := mid else lo := mid + 1
  done;
  match greedy a ~speeds ~bound:cand.(!lo) with
  | Some sol -> sol
  | None ->
    (* Fallback: single interval on the fastest speed. *)
    let order = by_decreasing_speed speeds in
    let u = order.(0) in
    {
      bottleneck = Prefix.total prefix /. speeds.(u);
      partition = [| Interval.make ~first:1 ~last:n |];
      assignment = [| u |];
    }

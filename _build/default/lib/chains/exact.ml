let candidates prefix =
  let n = Prefix.n prefix in
  let all = Array.make (n * (n + 1) / 2) 0. in
  let idx = ref 0 in
  for d = 1 to n do
    for e = d to n do
      all.(!idx) <- Prefix.sum prefix d e;
      incr idx
    done
  done;
  Array.sort compare all;
  (* Deduplicate in place. *)
  let out = ref [] in
  Array.iter
    (fun v -> match !out with w :: _ when w = v -> () | _ -> out := v :: !out)
    all;
  let dedup = Array.of_list (List.rev !out) in
  dedup

let solve a ~p =
  if p < 1 then invalid_arg "Exact.solve: p must be >= 1";
  let prefix = Prefix.make a in
  let cand = candidates prefix in
  (* Binary search for the smallest feasible candidate. The largest
     candidate (the total sum) is always feasible. *)
  let lo = ref 0 and hi = ref (Array.length cand - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Probe.feasible prefix ~p ~bound:cand.(mid) then hi := mid else lo := mid + 1
  done;
  let bound = cand.(!lo) in
  match Probe.partition prefix ~p ~bound with
  | Some partition -> (bound, partition)
  | None -> assert false (* the bound was just probed feasible *)

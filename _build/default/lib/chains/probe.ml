let greedy_cuts prefix ~bound =
  (* Returns the cut positions of the leftmost-greedy partition, or None
     when some single element exceeds the bound. *)
  let n = Prefix.n prefix in
  if Prefix.max_element prefix > bound then None
  else begin
    let rec walk from acc =
      if from > n then List.rev acc
      else
        let e = Prefix.longest_fitting prefix ~from ~budget:bound in
        (* max_element <= bound guarantees e >= from. *)
        if e >= n then List.rev acc else walk (e + 1) (e :: acc)
    in
    Some (walk 1 [])
  end

let min_intervals prefix ~bound =
  if bound < 0. then None
  else
    match greedy_cuts prefix ~bound with
    | None -> None
    | Some cuts -> Some (List.length cuts + 1)

let feasible prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.feasible: p must be >= 1";
  match min_intervals prefix ~bound with
  | None -> false
  | Some m -> m <= p

let partition prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.partition: p must be >= 1";
  match greedy_cuts prefix ~bound with
  | None -> None
  | Some cuts ->
    if List.length cuts + 1 <= p then
      Some (Partition.of_cuts ~n:(Prefix.n prefix) cuts)
    else None

(** Nicol's exact algorithm for homogeneous chains-to-chains.

    A third, independently-derived exact solver (after {!Dp} and the
    parametric search of {!Exact}), following Nicol's recursive scheme as
    described by Pinar & Aykanat (2004): the optimal bottleneck for a
    suffix and [k] processors is [min_e max(sum(i..e), opt(e+1, k-1))];
    since the first term increases with [e] and the second decreases, the
    minimum sits at their crossing, found by binary search. With
    memoisation the cost is [O(np log n)] — and the test suite checks all
    three solvers agree bit-for-bit. *)

val solve : float array -> p:int -> float * Partition.t
(** Same contract as {!Dp.solve}. *)

(** Exact dynamic programming for homogeneous chains-to-chains.

    [f(k, j)] = best bottleneck partitioning the first [k] elements into
    at most [j] intervals; [f(k, j) = min_{i<k} max(f(i, j-1),
    sum(i+1..k))]. O(n²p) time, O(np) space — the textbook algorithm of
    Bokhari (1988) / Hansen & Lih (1992), used here as the reference
    optimum against which {!Exact} (parametric search) and the heuristics
    are validated. *)

val solve : float array -> p:int -> float * Partition.t
(** [solve a ~p] minimises the largest interval sum over partitions of
    [a] into at most [p] non-empty intervals. Raises [Invalid_argument]
    when [a] is empty or [p < 1]. *)

let lower prefix ~p =
  if p < 1 then invalid_arg "Bounds.lower: p must be >= 1";
  Float.max (Prefix.total prefix /. float_of_int p) (Prefix.max_element prefix)

let upper prefix ~p =
  let bound = lower prefix ~p +. Prefix.max_element prefix in
  (* Greedy at [lower + max_element] always succeeds: each interval takes
     at least [lower] worth of elements before overflowing, so at most p
     intervals are needed; the realised bottleneck only improves on the
     probe bound. *)
  match Probe.partition prefix ~p ~bound with
  | Some partition -> Partition.bottleneck prefix partition
  | None -> bound (* unreachable; keep the analytic value as fallback *)

let span prefix ~p = (lower prefix ~p, upper prefix ~p)

module M = Pipeline_model

let instance_of_hetero a ~speeds =
  let n = Array.length a in
  if n = 0 then invalid_arg "To_mapping.instance_of_hetero: empty chain";
  let app = M.Application.make ~deltas:(Array.make (n + 1) 0.) a in
  let platform = M.Platform.comm_homogeneous ~bandwidth:1. speeds in
  M.Instance.make app platform

let mapping_of_solution (sol : Hetero.solution) =
  let n =
    match Array.length sol.partition with
    | 0 -> invalid_arg "To_mapping.mapping_of_solution: empty partition"
    | m -> M.Interval.last sol.partition.(m - 1)
  in
  let pairs =
    List.map2
      (fun iv u -> (iv, u))
      (Array.to_list sol.partition)
      (Array.to_list sol.assignment)
  in
  M.Mapping.make ~n pairs

let solution_of_mapping prefix ~speeds mapping =
  let pairs = M.Mapping.intervals mapping in
  let partition = Array.of_list (List.map fst pairs) in
  let assignment = Array.of_list (List.map snd pairs) in
  let per_interval = Array.map (fun u -> speeds.(u)) assignment in
  let bottleneck = Partition.weighted_bottleneck prefix ~speeds:per_interval partition in
  Hetero.{ bottleneck; partition; assignment }

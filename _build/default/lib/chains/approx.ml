let solve ?(epsilon = 1e-6) a ~p =
  if p < 1 then invalid_arg "Approx.solve: p must be >= 1";
  if epsilon <= 0. then invalid_arg "Approx.solve: epsilon must be > 0";
  let prefix = Prefix.make a in
  let lo, hi = Bounds.span prefix ~p in
  let lo = ref lo and hi = ref hi in
  (* Invariant: hi is feasible, lo is a valid lower bound. *)
  while !hi -. !lo > epsilon *. Float.max 1. !lo do
    let mid = (!lo +. !hi) /. 2. in
    if Probe.feasible prefix ~p ~bound:mid then hi := mid else lo := mid
  done;
  match Probe.partition prefix ~p ~bound:!hi with
  | Some partition -> (Partition.bottleneck prefix partition, partition)
  | None -> assert false (* hi stays feasible throughout *)

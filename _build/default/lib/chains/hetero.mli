(** Hetero-1D-Partition (paper §3, Definition 1).

    Partition [a_1 … a_n] into at most [p] consecutive intervals and
    injectively assign each interval a processor speed, minimising
    [max_k (Σ_{i∈I_k} a_i) / s_σ(k)]. Theorem 1 proves the decision
    version NP-complete, so the exact solvers here are exponential in [p]
    — a processor-subset dynamic program — and are meant for the modest
    [p] of the validation suite, while {!greedy} and
    {!binary_search_greedy} are the polynomial heuristics.

    Speeds are identified by their index in the [speeds] array; a
    {!solution} reports which speed serves each interval. *)

type solution = {
  bottleneck : float;      (** achieved [max load/speed] *)
  partition : Partition.t; (** the intervals, in chain order *)
  assignment : int array;  (** [assignment.(j)] = index into [speeds] of
                               the processor serving interval [j] *)
}

val objective : float array -> speeds:float array -> solution -> float
(** Recompute the bottleneck of a solution from scratch (used by tests to
    cross-check the solvers' reported value). *)

val is_valid : n:int -> speeds:float array -> solution -> bool
(** Structural check: valid partition, assignment within bounds and
    injective, one speed per interval. *)

val exact_dp : float array -> speeds:float array -> solution
(** Optimal solution by dynamic programming over (prefix length,
    processor subset): O(2^p · n² · p) time, O(2^p · n) space. Raises
    [Invalid_argument] when [speeds] has more than 16 entries (the table
    would not fit) or either input is empty. *)

val decision : float array -> speeds:float array -> bound:float -> solution option
(** Exact decision procedure: a solution with bottleneck [≤ bound], or
    [None]. Subset DP specialised to the bound (prunes states whose
    partial bottleneck already exceeds it). *)

val greedy : float array -> speeds:float array -> bound:float -> solution option
(** Polynomial heuristic probe: consume speeds from fastest to slowest,
    each taking the longest prefix with [load/speed ≤ bound]. Sound (a
    returned solution is valid and meets the bound) but incomplete — it
    can miss feasible instances, as NP-hardness demands. *)

val binary_search_greedy : float array -> speeds:float array -> solution
(** Heuristic optimiser: binary search on the bound over the candidate
    interval sums scaled by each speed, using {!greedy} as the probe.
    Always returns a valid solution (the single-interval fallback on the
    fastest speed is feasible for a large enough bound). *)

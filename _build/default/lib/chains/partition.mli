(** Partitions of a chain [\[1..n\]] into consecutive non-empty intervals.

    Shared result type of every chains-to-chains algorithm. Reuses
    {!Pipeline_model.Interval} so partitions convert to pipeline mappings
    for free. *)

type t = Pipeline_model.Interval.t array
(** Intervals in order; a valid partition tiles [\[1..n\]]. *)

val of_cuts : n:int -> int list -> t
(** [of_cuts ~n cuts] builds the partition cut after each position in
    [cuts] (strictly increasing, each in [\[1, n-1\]]). [of_cuts ~n []]
    is the single interval [\[1..n\]]. *)

val cuts : t -> int list
(** Inverse of {!of_cuts}. *)

val is_valid : n:int -> t -> bool
(** Checks the tiling invariant. *)

val size : t -> int
(** Number of intervals. *)

val loads : Prefix.t -> t -> float array
(** Interval sums. *)

val bottleneck : Prefix.t -> t -> float
(** Largest interval sum (the homogeneous chains-to-chains objective). *)

val weighted_bottleneck : Prefix.t -> speeds:float array -> t -> float
(** [max_j (sum I_j) / speeds.(j)] — the heterogeneous objective for a
    partition whose interval [j] is served at speed [speeds.(j)]
    ([speeds] must have one entry per interval). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

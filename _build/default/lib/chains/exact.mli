(** Exact homogeneous chains-to-chains by parametric search.

    The optimal bottleneck is necessarily the sum of some interval of
    consecutive elements, so there are at most [n(n+1)/2] candidate
    values. Sorting the candidates and binary-searching with the greedy
    {!Probe} yields the optimum in [O(n² log n)] — the "Nicol-style"
    scheme from the 1D-partitioning literature (Pinar & Aykanat 2004).
    Faster on wide chains than {!Dp} and bit-for-bit robust (no floating
    point threshold tuning: the probe is run only on realisable sums). *)

val candidates : Prefix.t -> float array
(** All distinct interval sums, sorted increasingly. O(n²) space. *)

val solve : float array -> p:int -> float * Partition.t
(** Same contract as {!Dp.solve}; the two agree on every instance (a
    property the test suite checks). *)

module Interval = Pipeline_model.Interval

type t = Interval.t array

let of_cuts ~n cuts =
  if n < 1 then invalid_arg "Partition.of_cuts: n must be >= 1";
  let rec build start = function
    | [] -> [ Interval.make ~first:start ~last:n ]
    | c :: rest ->
      if c < start || c >= n then invalid_arg "Partition.of_cuts: bad cut";
      Interval.make ~first:start ~last:c :: build (c + 1) rest
  in
  Array.of_list (build 1 cuts)

let cuts t =
  let m = Array.length t in
  List.init (m - 1) (fun j -> Interval.last t.(j))

let is_valid ~n t = Interval.partition_of n (Array.to_list t)

let size t = Array.length t

let loads prefix t =
  Array.map (fun iv -> Prefix.sum prefix (Interval.first iv) (Interval.last iv)) t

let bottleneck prefix t = Array.fold_left Float.max 0. (loads prefix t)

let weighted_bottleneck prefix ~speeds t =
  if Array.length speeds <> Array.length t then
    invalid_arg "Partition.weighted_bottleneck: one speed per interval required";
  let worst = ref 0. in
  Array.iteri
    (fun j iv ->
      let load =
        Prefix.sum prefix (Interval.first iv) (Interval.last iv) /. speeds.(j)
      in
      worst := Float.max !worst load)
    t;
  !worst

let to_string t =
  String.concat "" (Array.to_list (Array.map Interval.to_string t))

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** The NP-completeness gadget of Theorem 1.

    The paper reduces NUMERICAL MATCHING WITH TARGET SUMS (NMWTS) to
    Hetero-1D-Partition: from [3m] numbers [x_i, y_i, z_i] (with
    [Σx + Σy = Σz]) it builds [n = (M+3)·m] tasks

    {v A_1 1…1 C D | A_2 1…1 C D | … | A_m 1…1 C D v}

    with [M = max {x_i, y_i, z_i}], [B = 2M], [C = 5M], [D = 7M],
    [A_i = B + x_i], [M] unit tasks per block, and [p = 3m] speeds
    [s_i = B + z_i], [s_{m+i} = C + M - y_i], [s_{2m+i} = D]; the bound is
    [K = 1].

    This module constructs the gadget, maps NMWTS certificates to
    bottleneck-1 solutions and back, and brute-forces small NMWTS
    instances — together the ingredients for executing both directions of
    the proof, which the test suite does on concrete instances. *)

type nmwts = {
  xs : int array;
  ys : int array;
  zs : int array;
}
(** An NMWTS instance; the three arrays must share their length [m] and
    contain non-negative numbers. *)

val make_nmwts : xs:int array -> ys:int array -> zs:int array -> nmwts
(** Validates shapes and signs. Does {e not} require [Σx + Σy = Σz] (the
    reduction is still well-defined; such instances are simply
    unsatisfiable). *)

val m_of : nmwts -> int
val big_m : nmwts -> int
(** [M = max_i {x_i, y_i, z_i}] (at least 1 so the unit-task blocks are
    non-empty). *)

val verify_matching : nmwts -> sigma1:int array -> sigma2:int array -> bool
(** Are [sigma1], [sigma2] permutations of [0..m-1] with
    [x_i + y_{sigma1(i)} = z_{sigma2(i)}] for all [i]? *)

val solve_nmwts_brute : nmwts -> (int array * int array) option
(** Exhaustive search over permutation pairs — O((m!)²), for gadget-sized
    tests only ([m ≤ 6] enforced). *)

val instance : nmwts -> float array * float array
(** [(tasks, speeds)] of the Hetero-1D-Partition instance [I_2]. *)

val solution_of_matching :
  nmwts -> sigma1:int array -> sigma2:int array -> Hetero.solution
(** The forward direction of the proof: from an NMWTS certificate, build
    the bottleneck-[K = 1] solution (each block split as
    [A_i + y_{σ1(i)} ones | rest of ones + C | D]). *)

val extract_matching : nmwts -> Hetero.solution -> (int array * int array) option
(** The converse direction: from any solution with bottleneck [≤ 1],
    recover permutations [sigma1, sigma2] solving NMWTS. Returns [None]
    when the solution's bottleneck exceeds 1 or its structure does not
    match the gadget (which, per the proof, cannot happen for a real
    bottleneck-1 solution). *)

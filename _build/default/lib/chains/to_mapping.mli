(** The Theorem 2 bridge between Hetero-1D-Partition and pipeline mapping.

    Any Hetero-1D-Partition instance becomes a period-minimisation
    instance by taking [w_i = a_i], all [δ_i = 0] and [b = 1] on a
    communication-homogeneous platform with the same speeds: the period
    of an interval mapping then equals the weighted bottleneck of the
    corresponding partition. These conversions make the equivalence
    executable (and testable in both directions). *)

val instance_of_hetero :
  float array -> speeds:float array -> Pipeline_model.Instance.t
(** Build the pipeline instance of the proof of Theorem 2. Zero-weight
    elements are allowed (stages may have [w_i = 0]). *)

val mapping_of_solution : Hetero.solution -> Pipeline_model.Mapping.t
(** Interpret a solution's intervals and speed assignment as an interval
    mapping (speed index = processor index). *)

val solution_of_mapping :
  Prefix.t -> speeds:float array -> Pipeline_model.Mapping.t -> Hetero.solution
(** The converse: read a mapping back as a Hetero-1D solution, recomputing
    the weighted bottleneck from the chain [Prefix.t]. *)

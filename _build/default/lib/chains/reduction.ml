module Interval = Pipeline_model.Interval

type nmwts = { xs : int array; ys : int array; zs : int array }

let make_nmwts ~xs ~ys ~zs =
  let m = Array.length xs in
  if m = 0 then invalid_arg "Reduction.make_nmwts: empty instance";
  if Array.length ys <> m || Array.length zs <> m then
    invalid_arg "Reduction.make_nmwts: xs, ys, zs must share their length";
  let check a =
    Array.iter
      (fun v -> if v < 0 then invalid_arg "Reduction.make_nmwts: negative number")
      a
  in
  check xs;
  check ys;
  check zs;
  { xs; ys; zs }

let m_of t = Array.length t.xs

let big_m t =
  let max_of a = Array.fold_left max 0 a in
  max 1 (max (max_of t.xs) (max (max_of t.ys) (max_of t.zs)))

let is_permutation m sigma =
  Array.length sigma = m
  &&
  let seen = Array.make m false in
  Array.for_all
    (fun j ->
      if j < 0 || j >= m || seen.(j) then false
      else begin
        seen.(j) <- true;
        true
      end)
    sigma

let verify_matching t ~sigma1 ~sigma2 =
  let m = m_of t in
  is_permutation m sigma1 && is_permutation m sigma2
  &&
  let ok = ref true in
  for i = 0 to m - 1 do
    if t.xs.(i) + t.ys.(sigma1.(i)) <> t.zs.(sigma2.(i)) then ok := false
  done;
  !ok

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun perm -> x :: perm) (permutations rest))
      l

let solve_nmwts_brute t =
  let m = m_of t in
  if m > 6 then invalid_arg "Reduction.solve_nmwts_brute: m too large (max 6)";
  let all = permutations (List.init m (fun i -> i)) in
  let found = ref None in
  List.iter
    (fun p1 ->
      if !found = None then
        List.iter
          (fun p2 ->
            if !found = None then begin
              let sigma1 = Array.of_list p1 and sigma2 = Array.of_list p2 in
              if verify_matching t ~sigma1 ~sigma2 then
                found := Some (sigma1, sigma2)
            end)
          all)
    all;
  !found

(* Gadget constants (proof of Theorem 1). *)
let constants t =
  let bigm = big_m t in
  let b = 2 * bigm and c = 5 * bigm and d = 7 * bigm in
  (bigm, b, c, d)

let instance t =
  let m = m_of t in
  let bigm, b, c, d = constants t in
  let block = bigm + 3 in
  let n = block * m in
  let tasks = Array.make n 1. in
  for i = 0 to m - 1 do
    let base = i * block in
    tasks.(base) <- float_of_int (b + t.xs.(i));
    (* positions base+1 .. base+bigm stay 1. *)
    tasks.(base + bigm + 1) <- float_of_int c;
    tasks.(base + bigm + 2) <- float_of_int d
  done;
  let speeds = Array.make (3 * m) 0. in
  for i = 0 to m - 1 do
    speeds.(i) <- float_of_int (b + t.zs.(i));
    speeds.(m + i) <- float_of_int (c + bigm - t.ys.(i));
    speeds.(2 * m + i) <- float_of_int d
  done;
  (tasks, speeds)

let solution_of_matching t ~sigma1 ~sigma2 =
  if not (is_permutation (m_of t) sigma1 && is_permutation (m_of t) sigma2) then
    invalid_arg "Reduction.solution_of_matching: not permutations";
  let m = m_of t in
  let bigm, _, _, _ = constants t in
  let block = bigm + 3 in
  let ivs = ref [] and procs = ref [] in
  for i = 0 to m - 1 do
    let base = i * block in
    (* 1-based chain positions of the block: base+1 .. base+block. *)
    let y = t.ys.(sigma1.(i)) in
    let first_end = base + 1 + y in
    ivs := Interval.make ~first:(base + 1) ~last:first_end :: !ivs;
    procs := sigma2.(i) :: !procs;
    ivs := Interval.make ~first:(first_end + 1) ~last:(base + bigm + 2) :: !ivs;
    procs := (m + sigma1.(i)) :: !procs;
    ivs := Interval.make ~first:(base + bigm + 3) ~last:(base + block) :: !ivs;
    procs := (2 * m + i) :: !procs
  done;
  let tasks, speeds = instance t in
  let partition = Array.of_list (List.rev !ivs) in
  let assignment = Array.of_list (List.rev !procs) in
  let sol : Hetero.solution = { bottleneck = 0.; partition; assignment } in
  let bottleneck = Hetero.objective tasks ~speeds sol in
  { sol with bottleneck }

let eps = 1e-9

let extract_matching t sol =
  let m = m_of t in
  let bigm, _, _, _ = constants t in
  let block = bigm + 3 in
  let Hetero.{ bottleneck; partition; assignment } = sol in
  if bottleneck > 1. +. eps then None
  else if Array.length partition <> 3 * m then None
  else begin
    let sigma1 = Array.make m (-1) and sigma2 = Array.make m (-1) in
    let ok = ref true in
    for i = 0 to m - 1 do
      let base = i * block in
      let iv1 = partition.(3 * i)
      and iv2 = partition.((3 * i) + 1)
      and iv3 = partition.((3 * i) + 2) in
      (* Expected gadget structure: [A_i …ones] [ones… C] [D]. *)
      if
        Interval.first iv1 <> base + 1
        || Interval.last iv2 <> base + bigm + 2
        || Interval.first iv3 <> base + bigm + 3
        || Interval.last iv3 <> base + block
      then ok := false
      else begin
        let u1 = assignment.(3 * i) and u2 = assignment.((3 * i) + 1) in
        if u1 < 0 || u1 >= m || u2 < m || u2 >= 2 * m then ok := false
        else begin
          sigma2.(i) <- u1;
          sigma1.(i) <- u2 - m
        end
      end
    done;
    if !ok && verify_matching t ~sigma1 ~sigma2 then Some (sigma1, sigma2)
    else None
  end

let solve a ~p =
  if p < 1 then invalid_arg "Nicol.solve: p must be >= 1";
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  let p = min p n in
  (* memo.(k-1).(i-1): optimal bottleneck for elements i..n on k
     processors; cut.(k-1).(i-1): end of the first interval in an optimal
     split (i-1 encodes "empty suffix handled elsewhere"). *)
  let memo = Array.make_matrix p n nan in
  let cut = Array.make_matrix p n 0 in
  let rec opt i k =
    if i > n then 0.
    else if k = 1 then Prefix.sum prefix i n
    else begin
      let cached = memo.(k - 1).(i - 1) in
      if not (Float.is_nan cached) then cached
      else begin
        (* sum(i..e) grows with e; opt(e+1, k-1) shrinks: binary search
           the first e where the first term dominates, then compare the
           two candidates around the crossing. *)
        let value e = Float.max (Prefix.sum prefix i e) (opt (e + 1) (k - 1)) in
        let dominated e = Prefix.sum prefix i e >= opt (e + 1) (k - 1) in
        let lo = ref i and hi = ref n in
        if dominated i then hi := i
        else begin
          (* invariant: not (dominated lo), dominated hi (hi = n has an
             empty remainder, so sum >= 0 = opt). *)
          while !hi - !lo > 1 do
            let mid = (!lo + !hi) / 2 in
            if dominated mid then hi := mid else lo := mid
          done
        end;
        let best_e = ref !hi and best = ref (value !hi) in
        if !hi > i then begin
          let candidate = value (!hi - 1) in
          if candidate < !best then begin
            best := candidate;
            best_e := !hi - 1
          end
        end;
        memo.(k - 1).(i - 1) <- !best;
        cut.(k - 1).(i - 1) <- !best_e;
        !best
      end
    end
  in
  let bottleneck = opt 1 p in
  (* Reconstruct: walk the stored first-interval ends. *)
  let rec cuts i k acc =
    if i > n || k = 1 then List.rev acc
    else begin
      let e = cut.(k - 1).(i - 1) in
      if e >= n then List.rev acc else cuts (e + 1) (k - 1) (e :: acc)
    end
  in
  (bottleneck, Partition.of_cuts ~n (cuts 1 p []))

let solve a ~p =
  if p < 1 then invalid_arg "Dp.solve: p must be >= 1";
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  let p = min p n in
  (* best.(j).(k): bottleneck for the first k elements in <= j+1 intervals;
     cut.(j).(k): last cut position for reconstruction (0 = no cut). *)
  let best = Array.make_matrix p (n + 1) infinity in
  let cut = Array.make_matrix p (n + 1) 0 in
  for k = 1 to n do
    best.(0).(k) <- Prefix.sum prefix 1 k
  done;
  for j = 1 to p - 1 do
    best.(j).(0) <- 0.;
    for k = 1 to n do
      (* Either keep <= j intervals, or cut after some i >= 1. *)
      best.(j).(k) <- best.(j - 1).(k);
      cut.(j).(k) <- cut.(j - 1).(k);
      for i = 1 to k - 1 do
        let candidate = Float.max best.(j - 1).(i) (Prefix.sum prefix (i + 1) k) in
        if candidate < best.(j).(k) then begin
          best.(j).(k) <- candidate;
          cut.(j).(k) <- i
        end
      done
    done
  done;
  (* Reconstruct the cuts from the last row. *)
  let rec collect j k acc =
    if k = 0 then acc
    else
      let i = cut.(j).(k) in
      if i = 0 then acc
      else collect (max 0 (j - 1)) i (i :: acc)
  in
  let cuts = collect (p - 1) n [] in
  (best.(p - 1).(n), Partition.of_cuts ~n cuts)

(** Greedy feasibility probe for the homogeneous chains-to-chains problem.

    [PROBE(B)]: can [\[1..n\]] be partitioned into at most [p] consecutive
    intervals with every interval sum at most [B]? Because elements are
    non-negative, cutting each interval as late as possible is optimal, so
    the greedy answer is exact. This is the classic building block of the
    parametric-search algorithms surveyed by Pinar & Aykanat (2004). *)

val feasible : Prefix.t -> p:int -> bound:float -> bool
(** O(p log n). [p ≥ 1] required. *)

val partition : Prefix.t -> p:int -> bound:float -> Partition.t option
(** The leftmost-greedy witness partition (at most [p] intervals), or
    [None] when infeasible. The witness may use fewer than [p] intervals. *)

val min_intervals : Prefix.t -> bound:float -> int option
(** Smallest number of intervals achieving bottleneck [≤ bound];
    [None] when a single element already exceeds [bound]. *)

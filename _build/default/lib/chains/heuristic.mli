(** Classic linear-time heuristics for homogeneous chains-to-chains.

    Neither is optimal; both are standard baselines in the 1D-partitioning
    literature and serve as cheap seeds / sanity baselines next to the
    exact algorithms. *)

val greedy_target : float array -> p:int -> Partition.t
(** Aim every interval at the ideal load [total/p]: scan left to right and
    cut once adding the next element would move the current interval
    further from the target than stopping (at most [p] intervals; the
    remainder is merged into the last interval). *)

val recursive_bisection : float array -> p:int -> Partition.t
(** Split the chain at the most balanced cut, recurse with [⌈p/2⌉] and
    [⌊p/2⌋] parts on the halves. At most [p] intervals. *)

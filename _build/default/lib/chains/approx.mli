(** (1+ε)-approximation for homogeneous chains-to-chains by bisection on
    the bound (Iqbal, Int. J. Parallel Programming 1991).

    Bisect the bottleneck value between the analytic bounds of {!Bounds},
    probing feasibility greedily; stop when the bracket is within a
    relative [ε]. [O(p log n · log(1/ε))] — independent of the number of
    distinct candidate sums, unlike the exact parametric search, which
    makes it the right tool for very long chains. *)

val solve : ?epsilon:float -> float array -> p:int -> float * Partition.t
(** [solve a ~p] returns a partition whose bottleneck is within a factor
    [1 + epsilon] (default [1e-6]) of the optimum. Raises
    [Invalid_argument] when [a] is empty, [p < 1] or [epsilon <= 0]. *)

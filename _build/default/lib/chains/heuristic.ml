let greedy_target a ~p =
  if p < 1 then invalid_arg "Heuristic.greedy_target: p must be >= 1";
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  let p = min p n in
  let target = Prefix.total prefix /. float_of_int p in
  let cuts = ref [] and count = ref 1 and start = ref 1 in
  let k = ref 1 in
  while !k <= n && !count < p do
    (* Would cutting after k leave the current interval closer to the
       target than extending it by one more element? *)
    let here = Prefix.sum prefix !start !k in
    let extended =
      if !k < n then Prefix.sum prefix !start (!k + 1) else infinity
    in
    if
      !k < n
      && Float.abs (here -. target) <= Float.abs (extended -. target)
      && n - !k >= p - !count (* enough elements left for remaining intervals *)
    then begin
      cuts := !k :: !cuts;
      incr count;
      start := !k + 1
    end;
    incr k
  done;
  Partition.of_cuts ~n (List.rev !cuts)

let recursive_bisection a ~p =
  if p < 1 then invalid_arg "Heuristic.recursive_bisection: p must be >= 1";
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  (* Collect cut positions; [halve d e parts] partitions [d..e]. *)
  let rec halve d e parts acc =
    if parts <= 1 || d >= e then acc
    else begin
      let left_parts = (parts + 1) / 2 in
      let right_parts = parts - left_parts in
      (* Find the cut c in [d, e-1] minimising the imbalance between the
         per-part averages of the two halves. *)
      let best_c = ref d and best_cost = ref infinity in
      for c = d to e - 1 do
        (* Both halves must host at least one element per part. *)
        if c - d + 1 >= left_parts && e - c >= right_parts then begin
          let left = Prefix.sum prefix d c /. float_of_int left_parts in
          let right = Prefix.sum prefix (c + 1) e /. float_of_int right_parts in
          let cost = Float.abs (left -. right) in
          if cost < !best_cost then begin
            best_cost := cost;
            best_c := c
          end
        end
      done;
      let c = !best_c in
      let acc = halve d c left_parts (c :: acc) in
      halve (c + 1) e right_parts acc
    end
  in
  let cuts = List.sort_uniq compare (halve 1 n (min p n) []) in
  Partition.of_cuts ~n cuts

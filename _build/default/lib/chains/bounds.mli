(** Analytic bounds for homogeneous chains-to-chains.

    Cheap certificates used by the approximation scheme ({!Approx}) and
    handy for sanity-checking any solver: the optimum always lies in
    [\[lower, upper\]] with [upper ≤ 2·lower] for [greedy_upper]. *)

val lower : Prefix.t -> p:int -> float
(** [max(total/p, max element)] — no partition into [p] intervals can do
    better. *)

val upper : Prefix.t -> p:int -> float
(** Bottleneck of the greedy partition probed at [lower + max element]
    (always feasible): a valid upper bound within [lower + max_element],
    hence at most twice the optimum. *)

val span : Prefix.t -> p:int -> float * float
(** [(lower, upper)] in one call. *)

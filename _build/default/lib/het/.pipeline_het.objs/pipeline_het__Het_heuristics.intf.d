lib/het/het_heuristics.mli: Instance Pipeline_core Pipeline_model Registry Solution

lib/het/het_heuristics.ml: Application Float Fun Instance Interval List Mapping Metrics Option Pipeline_core Pipeline_model Platform Registry Solution

open Pipeline_model
open Pipeline_deal

let min_latency (inst : Instance.t) rel ~period ~failure =
  if Reliability.p rel <> Platform.p inst.platform then
    invalid_arg "Ft_exhaustive: reliability vector does not match the platform";
  if not (Float.is_finite period && period > 0.) then
    invalid_arg "Ft_exhaustive: period bound must be finite and > 0";
  if not (failure >= 0. && failure <= 1.) then
    invalid_arg "Ft_exhaustive: failure bound must be in [0,1]";
  let best = ref None in
  Deal_exhaustive.iter inst (fun deal ->
      let cand = Ft_heuristic.evaluate inst rel deal in
      if Ft_heuristic.feasible cand ~period ~failure then
        match !best with
        | Some (b : Ft_heuristic.solution)
          when (b.latency, b.period, b.failure)
               <= (cand.Ft_heuristic.latency, cand.period, cand.failure) ->
          ()
        | _ -> best := Some cand);
  !best

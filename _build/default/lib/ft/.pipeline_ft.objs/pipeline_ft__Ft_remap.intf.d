lib/ft/ft_remap.mli: Instance Mapping Pipeline_core Pipeline_model

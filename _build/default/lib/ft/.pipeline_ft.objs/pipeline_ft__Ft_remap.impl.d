lib/ft/ft_remap.ml: Application Array Float Fun Instance Interval List Mapping Pipeline_core Pipeline_model Platform

lib/ft/ft_heuristic.ml: Deal_heuristic Deal_mapping Deal_metrics Deal_reliability Float Instance List Pipeline_deal Pipeline_model Platform Reliability

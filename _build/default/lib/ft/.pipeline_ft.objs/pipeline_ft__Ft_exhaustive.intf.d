lib/ft/ft_exhaustive.mli: Ft_heuristic Instance Pipeline_model Reliability

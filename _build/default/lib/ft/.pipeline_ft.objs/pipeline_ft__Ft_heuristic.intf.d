lib/ft/ft_heuristic.mli: Instance Pipeline_deal Pipeline_model Reliability

lib/ft/ft_exhaustive.ml: Deal_exhaustive Float Ft_heuristic Instance Pipeline_deal Pipeline_model Platform Reliability

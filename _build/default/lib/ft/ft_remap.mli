(** Online remapping after processor failures.

    When processors crash mid-campaign, the controller re-solves the
    mapping problem on the {e surviving} sub-platform with any registry
    heuristic and reports the migration cost of switching, plus the
    (possibly degraded) period and latency of the new mapping:

    {ol
    {- survivors keep their original (platform-wide, 0-based) indices —
       the returned mapping is directly valid on the original platform
       and never enrols a failed processor;}
    {- if the running mapping enrols no failed processor and still meets
       the threshold, it is kept as-is — an online controller never
       migrates without cause;}
    {- otherwise the chosen heuristic (default: H1, ["h1-sp-mono-p"])
       runs on the surviving sub-platform against the caller's
       threshold;}
    {- when the heuristic cannot meet the threshold on the degraded
       platform, the controller falls back to the fastest surviving
       processor (Lemma 1's shape) and reports [met_threshold = false]
       rather than giving up — an online system needs {e some} mapping;}
    {- migration cost counts the stages whose processor changed and
       charges each moved stage its input payload [δ_{k-1}] (the data
       that must be re-staged on the new processor).}}

    Restricted to communication-homogeneous platforms, like the registry
    heuristics. *)

open Pipeline_model

type outcome = {
  mapping : Mapping.t;      (** on original indices; survivors only *)
  period : float;           (** equation (1) on the original platform *)
  latency : float;          (** equation (2) on the original platform *)
  met_threshold : bool;     (** threshold met (period- or latency-, per
                                the heuristic's kind) *)
  fallback : bool;          (** heuristic failed; fastest-survivor
                                single-processor mapping used instead *)
  migrated_stages : int;    (** stages whose processor changed *)
  migration_volume : float; (** [Σ δ_{k-1}] over migrated stages *)
}

val remap :
  ?heuristic:Pipeline_core.Registry.info ->
  Instance.t ->
  before:Mapping.t ->
  failed:int list ->
  threshold:float ->
  outcome option
(** [None] exactly when no processor survives. Raises [Invalid_argument]
    when [before] does not fit the instance, a failed index is out of
    range, the threshold is not finite and positive, or the platform is
    not communication-homogeneous. [failed] may list duplicates and
    processors unused by [before]; a crash-free call ([failed = []])
    with a threshold [before] already meets typically returns a
    zero-migration outcome. *)

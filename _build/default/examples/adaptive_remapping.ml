(* Adaptive remapping after a machine degrades.

   Run with:  dune exec examples/adaptive_remapping.exe

   The paper computes a static mapping from exact platform parameters.
   Real machines degrade: a co-scheduled job or thermal throttling can
   halve a processor's effective speed mid-run. This example quantifies,
   on the stochastic simulator, the cost of staying with a stale mapping
   versus re-running the paper's heuristic with the degraded speed — the
   operational argument for pairing the heuristics with monitoring. *)

open Pipeline_model
open Pipeline_core
module W = Pipeline_sim.Workload_sim

let () =
  let rng = Pipeline_util.Rng.create 99 in
  let app = App_generator.generate rng (App_generator.e2 ~n:16) in
  let platform = Platform_generator.comm_homogeneous rng ~p:8 in
  let inst = Instance.make app platform in
  Format.printf "%a@.@." Instance.pp inst;

  (* Plan a mapping at a mid-range period target. *)
  let threshold = Instance.single_proc_period inst *. 0.5 in
  let planned =
    match Sp_mono_p.solve inst ~period:threshold with
    | Some sol -> sol
    | None -> Solution.of_mapping inst (Instance.single_proc_mapping inst)
  in
  Format.printf "planned: %a@." Solution.pp planned;

  (* The fastest enrolled machine loses half its speed. *)
  let victim = (Mapping.procs planned.Solution.mapping).(0) in
  let factor = 0.5 in
  Format.printf "incident: P%d drops to %.0f%% speed@.@." victim (100. *. factor);

  let simulate mapping =
    let config =
      {
        W.default_config with
        W.datasets = 300;
        slowdowns = [ { W.at = 0.; proc = victim; factor } ];
      }
    in
    (W.run ~config inst mapping).W.steady_period
  in
  let stale_period = simulate planned.Solution.mapping in

  (* Replan against the degraded platform. *)
  let degraded_speeds =
    Array.mapi
      (fun u s -> if u = victim then s *. factor else s)
      (Platform.speeds platform)
  in
  let degraded_platform =
    Platform.comm_homogeneous
      ~bandwidth:(Platform.io_bandwidth platform 0)
      degraded_speeds
  in
  let degraded_inst = Instance.make app degraded_platform in
  let replanned =
    match Sp_mono_l.solve degraded_inst ~latency:infinity with
    | Some sol -> sol
    | None ->
      Solution.of_mapping degraded_inst
        (Instance.single_proc_mapping degraded_inst)
  in
  let replanned_period = simulate replanned.Solution.mapping in

  Format.printf "steady period, planned mapping before the incident: %8.2f@."
    planned.Solution.period;
  Format.printf "steady period, stale mapping after the incident:    %8.2f@."
    stale_period;
  Format.printf "steady period, remapped on the degraded platform:   %8.2f@."
    replanned_period;
  Format.printf "               (remapped to %s)@.@."
    (Mapping.to_string replanned.Solution.mapping);
  let recovered =
    (stale_period -. replanned_period)
    /. (stale_period -. planned.Solution.period)
  in
  if Float.is_finite recovered && recovered > 0. then
    Format.printf "remapping recovers %.0f%% of the incident's damage.@."
      (100. *. Float.min 1. recovered)
  else
    Format.printf
      "the stale mapping happened to survive the incident unharmed.@."

(* Beyond the paper: heterogeneous networks and stage replication.

   Run with:  dune exec examples/heterogeneous_network.exe

   The paper's conclusion (§7) names two extensions: fully heterogeneous
   platforms, and deal/farm skeletons that replicate a bottleneck stage.
   This example exercises both, loading the instances from the textual
   files under examples/instances/. *)

open Pipeline_model

let load path =
  match Instance_io.load path with
  | Ok inst -> inst
  | Error e ->
    Format.eprintf "%s: %a@." path Instance_io.pp_error e;
    exit 1

let () =
  (* Part 1 — a heterogeneous network: two machines on a fat link, a
     third behind a thin one. The paper's heuristics cannot run here
     (they assume identical links); the het extension re-scores every
     split with the true per-link cost model. *)
  let inst = load "examples/instances/hetnet.pw" in
  Format.printf "Part 1 — fully heterogeneous platform@.%a@.@." Instance.pp inst;
  let lat_opt = Pipeline_optimal.Latency.solve inst in
  Format.printf "Best single machine: %a@." Pipeline_core.Solution.pp lat_opt;
  List.iter
    (fun budget_factor ->
      let budget = lat_opt.Pipeline_core.Solution.latency *. budget_factor in
      match
        Pipeline_het.Het_heuristics.minimise_period_under_latency inst
          ~latency:budget
      with
      | None -> Format.printf "  budget %.1f: infeasible@." budget
      | Some sol ->
        Format.printf "  latency budget %5.1f -> %a@." budget
          Pipeline_core.Solution.pp sol)
    [ 1.0; 1.3; 2.0 ];
  (* Ground truth for this small instance. *)
  let best = Pipeline_optimal.Exhaustive.min_period inst in
  Format.printf "  exhaustive optimum:     %a@.@." Pipeline_core.Solution.pp best;

  (* Part 2 — a hot stage: the encode stage of the transcoding chain
     dominates, so pure interval splitting hits a floor; replicating the
     hot interval (deal skeleton) goes below it. *)
  let inst = load "examples/instances/transcode.pw" in
  Format.printf "Part 2 — deal skeleton on the transcoding chain@.%a@.@."
    Instance.pp inst;
  (match Pipeline_core.Sp_mono_l.solve inst ~latency:infinity with
  | Some sol ->
    Format.printf "splitting only:   %a@." Pipeline_core.Solution.pp sol
  | None -> ());
  (match
     Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst
       ~latency:infinity
   with
  | Some sol ->
    Format.printf "with replication: %s period=%g latency=%g@."
      (Pipeline_deal.Deal_mapping.to_string sol.Pipeline_deal.Deal_heuristic.mapping)
      sol.Pipeline_deal.Deal_heuristic.period
      sol.Pipeline_deal.Deal_heuristic.latency;
    (* Execute the dealt mapping operationally. *)
    let result =
      Pipeline_deal.Deal_sim.run inst sol.Pipeline_deal.Deal_heuristic.mapping
        ~datasets:400
    in
    Format.printf
      "simulated: steady period %.2f (analytic %.2f), worst frame delay %.1f@."
      result.Pipeline_deal.Deal_sim.steady_period
      sol.Pipeline_deal.Deal_heuristic.period
      result.Pipeline_deal.Deal_sim.max_latency
  | None -> ());
  (* The weighted-deal bound shows what a smarter-than-round-robin dealer
     could still gain. *)
  match
    Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst
      ~latency:infinity
  with
  | None -> ()
  | Some sol ->
    Format.printf "weighted-deal lower bound on the same mapping: %.2f@."
      (Pipeline_deal.Deal_metrics.period_weighted inst
         sol.Pipeline_deal.Deal_heuristic.mapping)

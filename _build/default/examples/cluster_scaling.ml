(* Mono- versus bi-criteria heuristics as the cluster grows.

   Run with:  dune exec examples/cluster_scaling.exe

   The paper's headline experimental conclusion (§5.3): with few
   processors the simple mono-criterion splitting heuristics are very
   competitive, but on large platforms the bi-criteria variants take
   over. This example measures exactly that claim: the same random E2
   applications are mapped onto clusters of 5, 10, 50 and 100 machines,
   and for each size we report the average latency achieved at a common
   mid-range period threshold (period-fixed family) and the average
   period at a common latency budget (latency-fixed family). *)

open Pipeline_model
open Pipeline_core
module Rng = Pipeline_util.Rng

let trials = 20
let n = 40

let instances p =
  List.map
    (fun i ->
      let rng = Rng.create ((7919 * i) + p) in
      let app = App_generator.generate rng (App_generator.e2 ~n) in
      let platform = Platform_generator.comm_homogeneous rng ~p in
      Instance.make ~id:i app platform)
    (List.init trials Fun.id)

let average xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Average objective achieved by a heuristic over the batch at a
   threshold derived per instance (fraction of the trivial threshold:
   single-processor period, resp. a multiple of the optimal latency). *)
let measure (info : Registry.info) batch =
  let results =
    List.filter_map
      (fun inst ->
        let threshold =
          match info.Registry.kind with
          | Registry.Period_fixed -> Instance.single_proc_period inst *. 0.45
          | Registry.Latency_fixed -> Instance.optimal_latency inst *. 1.6
        in
        Option.map
          (fun (sol : Solution.t) ->
            match info.Registry.kind with
            | Registry.Period_fixed -> sol.Solution.latency
            | Registry.Latency_fixed -> sol.Solution.period)
          (info.Registry.solve inst ~threshold))
      batch
  in
  (average results, List.length results)

let () =
  Format.printf
    "E2 applications, n = %d stages, %d random app/platform pairs per point.@."
    n trials;
  Format.printf
    "Period-fixed family: average latency at period <= 0.45 x single-machine.@.";
  Format.printf
    "Latency-fixed family: average period at latency <= 1.6 x optimal.@.@.";
  Format.printf "%-20s" "heuristic";
  List.iter (fun p -> Format.printf "%14s" (Printf.sprintf "p=%d" p)) [ 5; 10; 50; 100 ];
  Format.printf "@.";
  let batches = List.map (fun p -> (p, instances p)) [ 5; 10; 50; 100 ] in
  List.iter
    (fun (info : Registry.info) ->
      Format.printf "%-20s" info.Registry.paper_name;
      List.iter
        (fun (_, batch) ->
          let avg, ok = measure info batch in
          if ok = 0 then Format.printf "%14s" "-"
          else Format.printf "%11.1f/%02d" avg ok)
        batches;
      Format.printf "@.")
    Registry.all;
  Format.printf
    "@.(value = average objective over successful runs / number of successes;@.";
  Format.printf
    " lower is better; watch the bi-criteria rows overtake as p grows.)@."

(* Batch genomics: variant calling under a per-sample deadline.

   Run with:  dune exec examples/genomics_pipeline.exe

   A short-read analysis chain — QC, trimming, alignment, sorting,
   deduplication, pileup, variant calling, annotation — is compute-bound
   (the paper's experiment E3 regime: w >> δ). Each sample is a data
   set; the clinic promises a turnaround (latency) per sample, and the
   lab wants to push as many samples per hour as possible (period).
   That is exactly the "minimise period under a fixed latency" problem
   (heuristics H5/H6 in the paper, Sp mono L / Sp bi L). *)

open Pipeline_model
open Pipeline_core

let app =
  (* Work in core-minutes per sample; messages in GB (negligible next to
     the computation, as in E3). *)
  Application.make
    ~labels:[| "qc"; "trim"; "align"; "sort"; "dedup"; "pileup"; "call"; "annotate" |]
    ~deltas:[| 2.; 2.; 2.; 8.; 8.; 6.; 1.; 0.5; 0.5 |]
    [| 12.; 18.; 240.; 45.; 30.; 60.; 150.; 20. |]

let platform =
  (* Eight nodes of three generations on the same interconnect. *)
  Platform.comm_homogeneous ~bandwidth:20.
    [| 4.0; 4.0; 2.5; 2.5; 2.5; 1.5; 1.5; 1.0 |]

let inst = Instance.make app platform

let () =
  Format.printf "Pipeline: %a@." Application.pp app;
  Format.printf "Cluster:  %a@.@." Platform.pp platform;

  let lat_opt = Instance.optimal_latency inst in
  Format.printf "Fastest possible turnaround (one node): %.0f min/sample@.@." lat_opt;

  (* Sweep turnaround budgets; for each, minimise the period. Throughput
     is samples/hour = 60/period. *)
  Format.printf
    "--- Samples/hour under a turnaround budget (H5 = Sp mono L, H6 = Sp bi L) ---@.";
  Format.printf "%10s | %22s %22s %22s@." "budget" "Sp mono L" "Sp bi L" "exact";
  List.iter
    (fun factor ->
      let budget = lat_opt *. factor in
      let show = function
        | None -> "-"
        | Some (sol : Solution.t) ->
          Printf.sprintf "%5.1f/h (P=%5.1f, m=%d)" (60. /. sol.Solution.period)
            sol.Solution.period
            (Mapping.m sol.Solution.mapping)
      in
      let h5 = Sp_mono_l.solve inst ~latency:budget in
      let h6 = Sp_bi_l.solve inst ~latency:budget in
      let exact =
        Pipeline_optimal.Bicriteria.min_period_under_latency inst ~latency:budget
      in
      Format.printf "%8.0fmin | %22s %22s %22s@." budget (show h5) (show h6)
        (show exact))
    [ 1.0; 1.1; 1.25; 1.5; 2.0; 3.0 ];

  (* The whole achievable trade-off, exactly (p = 8 is fine for the
     subset DP). *)
  Format.printf "@.--- Exact Pareto front: turnaround vs throughput ---@.";
  List.iter
    (fun (sol : Solution.t) ->
      Format.printf "  %5.1f samples/h at %6.1f min turnaround   %s@."
        (60. /. sol.Solution.period) sol.Solution.latency
        (Mapping.to_string sol.Solution.mapping))
    (Pipeline_optimal.Bicriteria.pareto inst);

  (* Chains-to-chains view: with negligible communications the period
     problem is (almost) Hetero-1D-Partition on the stage works — the
     NP-hard core identified by Theorem 1. Compare the pipeline optimum
     against the pure chains optimum. *)
  let works = Application.works app in
  let speeds = Platform.speeds platform in
  let chains_opt = Chains.Hetero.exact_dp works ~speeds in
  let pipeline_opt = Pipeline_optimal.Bicriteria.min_period inst in
  Format.printf
    "@.Chains-to-chains relaxation (no comms): bottleneck %.2f; with comms: %.2f@."
    chains_opt.Chains.Hetero.bottleneck pipeline_opt.Solution.period;

  (* Run one day's batch through the simulator at the 1.5x budget. *)
  match Sp_bi_l.solve inst ~latency:(lat_opt *. 1.5) with
  | None -> ()
  | Some sol ->
    let samples = 48 in
    let trace = Pipeline_sim.Runner.run inst sol.Solution.mapping ~datasets:samples in
    Format.printf
      "@.Simulated batch of %d samples on %s:@.  last result after %.0f min; \
       worst turnaround %.0f min; steady rate %.1f samples/h@."
      samples
      (Mapping.to_string sol.Solution.mapping)
      (Pipeline_sim.Trace.makespan trace)
      (Pipeline_sim.Trace.max_latency trace)
      (60. /. Pipeline_sim.Trace.steady_period trace)

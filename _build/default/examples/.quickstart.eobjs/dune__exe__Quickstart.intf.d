examples/quickstart.mli:

examples/adaptive_remapping.mli:

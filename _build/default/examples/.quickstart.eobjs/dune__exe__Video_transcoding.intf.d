examples/video_transcoding.mli:

examples/cluster_scaling.ml: App_generator Format Fun Instance List Option Pipeline_core Pipeline_model Pipeline_util Platform_generator Printf Registry Solution

examples/genomics_pipeline.mli:

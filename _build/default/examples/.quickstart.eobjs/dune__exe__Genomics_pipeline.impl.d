examples/genomics_pipeline.ml: Application Chains Format Instance List Mapping Pipeline_core Pipeline_model Pipeline_optimal Pipeline_sim Platform Printf Solution Sp_bi_l Sp_mono_l

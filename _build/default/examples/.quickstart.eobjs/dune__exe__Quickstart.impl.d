examples/quickstart.ml: Application Format Instance List Mapping Metrics Pipeline_core Pipeline_model Pipeline_optimal Pipeline_sim Platform Registry Solution Sp_mono_p

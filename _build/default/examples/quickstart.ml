(* Quickstart: map a small pipeline onto a heterogeneous cluster.

   Run with:  dune exec examples/quickstart.exe

   Walks through the whole public API: build an application and a
   platform, evaluate a mapping by hand, run the six heuristics of the
   paper at a period threshold, compare with the exact solvers, and
   verify a mapping operationally with the simulator. *)

open Pipeline_model
open Pipeline_core

let () =
  (* A 6-stage pipeline: stage k performs w_k operations and passes a
     message of size δ_k to its successor (δ_0 enters from outside). *)
  let app =
    Application.make
      ~labels:[| "parse"; "filter"; "transform"; "join"; "rank"; "emit" |]
      ~deltas:[| 40.; 25.; 25.; 60.; 30.; 10.; 5. |]
      [| 12.; 30.; 45.; 80.; 22.; 8. |]
  in
  (* Five workstations of different speeds on a 10 MB/s switched LAN:
     the paper's Communication Homogeneous class. *)
  let platform = Platform.comm_homogeneous ~bandwidth:10. [| 6.; 14.; 3.; 9.; 11. |] in
  let inst = Instance.make app platform in

  Format.printf "Instance: %a@.@." Instance.pp inst;

  (* Evaluate a hand-written mapping with the paper's cost model. *)
  let manual = Mapping.of_cuts ~n:6 ~cuts:[ 3; 4 ] ~procs:[ 1; 4; 3 ] in
  let s = Metrics.summary app platform manual in
  Format.printf "Manual mapping %s:@.  %a@.@." (Mapping.to_string manual)
    Metrics.pp_summary s;

  (* Lemma 1: the latency optimum maps everything to the fastest CPU. *)
  let latency_opt = Pipeline_optimal.Latency.solve inst in
  Format.printf "Latency optimum (Lemma 1): %a@.@." Solution.pp latency_opt;

  (* The six heuristics at a fixed period threshold. *)
  let threshold = 15.0 in
  Format.printf "--- Heuristics at period <= %g (fixed latency: %g) ---@."
    threshold
    (latency_opt.Solution.latency *. 1.4);
  List.iter
    (fun (info : Registry.info) ->
      let t =
        match info.Registry.kind with
        | Registry.Period_fixed -> threshold
        | Registry.Latency_fixed -> latency_opt.Solution.latency *. 1.4
      in
      match info.Registry.solve inst ~threshold:t with
      | None -> Format.printf "%-18s FAILED at %g@." info.Registry.paper_name t
      | Some sol -> Format.printf "%-18s %a@." info.Registry.paper_name Solution.pp sol)
    Registry.all;

  (* Ground truth (exponential in p; fine for p = 5). *)
  let exact = Pipeline_optimal.Bicriteria.min_latency_under_period inst ~period:threshold in
  (match exact with
  | Some sol -> Format.printf "%-18s %a@.@." "exact optimum" Solution.pp sol
  | None -> Format.printf "no mapping achieves period %g@.@." threshold);

  (* The full period/latency trade-off curve. *)
  Format.printf "--- Pareto front (period, latency) ---@.";
  List.iter
    (fun (sol : Solution.t) ->
      Format.printf "  %8.3f  %8.3f   %s@." sol.Solution.period sol.Solution.latency
        (Mapping.to_string sol.Solution.mapping))
    (Pipeline_optimal.Bicriteria.pareto inst);

  (* Execute the best heuristic mapping on the simulated platform. *)
  match Sp_mono_p.solve inst ~period:threshold with
  | None -> ()
  | Some sol ->
    let report = Pipeline_sim.Validate.check ~datasets:100 inst sol.Solution.mapping in
    Format.printf "@.Simulator check of %s:@.  %a@."
      (Mapping.to_string sol.Solution.mapping)
      Pipeline_sim.Validate.pp report;
    let trace =
      Pipeline_sim.Runner.run inst sol.Solution.mapping ~datasets:4
    in
    Format.printf "@.Gantt (4 data sets, r=receive c=compute s=send):@.%s@."
      (Pipeline_sim.Trace.gantt ~width:76 trace)

(* Substring search for test assertions. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end

test/test_het.mli:

test/test_util.ml: Alcotest Array Ascii_plot Bipartite Csv Filename Float Fun Helpers Histogram Hungarian List Pipeline_util QCheck2 Rng Series Stats Str_find String Sys Table

test/test_chains.ml: Alcotest Approx Array Bounds Chains Dp Exact Helpers Hetero Heuristic Nicol Partition Pipeline_core Pipeline_model Pipeline_optimal Prefix Probe QCheck2 Reduction To_mapping

test/test_ft.mli:

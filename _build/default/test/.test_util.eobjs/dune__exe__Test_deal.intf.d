test/test_deal.mli:

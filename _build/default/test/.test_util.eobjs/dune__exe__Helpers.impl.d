test/helpers.ml: Alcotest Application Array Float Fmt Instance List Pipeline_model Pipeline_util Platform QCheck2 QCheck_alcotest

test/test_chains.mli:

open Pipeline_model
open Pipeline_core

let gen_seed = QCheck2.Gen.int_range 0 100_000

(* ------------------------------------------------------------------ *)
(* Solution                                                            *)
(* ------------------------------------------------------------------ *)

let test_solution_of_mapping () =
  let inst = Helpers.small_instance () in
  let sol = Solution.of_mapping inst (Mapping.single ~n:4 ~proc:1) in
  Helpers.check_float "period" 7. sol.Solution.period;
  Helpers.check_float "latency" 7. sol.Solution.latency

let test_solution_tolerance () =
  let inst = Helpers.small_instance () in
  let sol = Solution.of_mapping inst (Mapping.single ~n:4 ~proc:1) in
  Alcotest.(check bool) "exact threshold ok" true (Solution.respects_period sol 7.);
  Alcotest.(check bool) "tiny rounding ok" true
    (Solution.respects_period sol (7. -. 1e-12));
  Alcotest.(check bool) "clear violation" false (Solution.respects_period sol 6.9);
  Alcotest.(check bool) "latency ok" true (Solution.respects_latency sol 7.5)

(* ------------------------------------------------------------------ *)
(* Split machinery                                                     *)
(* ------------------------------------------------------------------ *)

let test_split_initial () =
  let inst = Helpers.small_instance () in
  let config = Split.initial inst in
  Alcotest.(check int) "one interval" 1 (Split.intervals config);
  Alcotest.(check int) "two unused" 2 (Split.unused config);
  Helpers.check_float "period = single proc" 7. (Split.period config);
  Helpers.check_float "latency = optimal" 7. (Split.latency config);
  Alcotest.(check int) "length" 4 (Split.length config 0);
  Alcotest.(check int) "bottleneck" 0 (Split.bottleneck config)

let test_split_rejects_het_platform () =
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  let inst = Instance.make (Application.uniform ~n:3 ~work:1. ~delta:1.) pl in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Split.initial: heuristics require a comm-homogeneous platform")
    (fun () -> ignore (Split.initial inst))

let test_split_two_candidates_improving () =
  let inst = Helpers.small_instance () in
  let config = Split.initial inst in
  let candidates = Split.two_split_candidates config ~j:0 in
  Alcotest.(check bool) "some candidates" true (candidates <> []);
  List.iter
    (fun (c : Split.candidate) ->
      Alcotest.(check bool) "improves the split interval" true
        (c.Split.max_piece_cycle < Split.cycle config 0);
      Alcotest.(check int) "enrolls one" 1 c.Split.enrolled;
      Alcotest.(check int) "two pieces" 2 (List.length c.Split.pieces);
      Alcotest.(check bool) "latency does not decrease" true
        (c.Split.dlatency >= -1e-9))
    candidates

let test_split_apply_consistent_with_metrics () =
  let inst = Helpers.small_instance () in
  let config = Split.initial inst in
  match Split.two_split_candidates config ~j:0 with
  | [] -> Alcotest.fail "expected candidates"
  | cand :: _ ->
    let config' = Split.apply config cand in
    let sol = Split.to_solution config' in
    Helpers.check_float "incremental period = metrics" sol.Solution.period
      (Split.period config');
    Helpers.check_float "incremental latency = metrics" sol.Solution.latency
      (Split.latency config');
    Alcotest.(check int) "two intervals" 2 (Split.intervals config');
    Alcotest.(check int) "one less unused" 1 (Split.unused config')

let test_split_singleton_no_candidates () =
  let app = Application.uniform ~n:1 ~work:5. ~delta:1. in
  let inst = Instance.make app (Helpers.small_platform ()) in
  let config = Split.initial inst in
  Alcotest.(check bool) "no 2-splits" true
    (Split.two_split_candidates config ~j:0 = []);
  Alcotest.(check bool) "no 3-splits" true
    (Split.three_split_candidates config ~j:0 = [])

let test_split_three_needs_two_procs () =
  let app = Application.uniform ~n:6 ~work:5. ~delta:1. in
  let pl = Platform.comm_homogeneous ~bandwidth:10. [| 4.; 2. |] in
  let inst = Instance.make app pl in
  let config = Split.initial inst in
  (* Only one unused processor: 3-split impossible, 2-split fine. *)
  Alcotest.(check bool) "no 3-splits" true
    (Split.three_split_candidates config ~j:0 = []);
  Alcotest.(check bool) "has 2-splits" true
    (Split.two_split_candidates config ~j:0 <> [])

let prop_split_candidates_all_improve =
  Helpers.qtest "every generated candidate strictly improves its interval"
    gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let config = Split.initial inst in
      let j = Split.bottleneck config in
      let old_cycle = Split.cycle config j in
      List.for_all
        (fun (c : Split.candidate) -> c.Split.max_piece_cycle < old_cycle)
        (Split.two_split_candidates config ~j
        @ Split.three_split_candidates config ~j))

let prop_split_candidate_metrics_exact =
  Helpers.qtest "candidate period/latency match a full re-evaluation" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let config = Split.initial inst in
      let j = Split.bottleneck config in
      List.for_all
        (fun (c : Split.candidate) ->
          let sol = Split.to_solution (Split.apply config c) in
          Helpers.feq ~eps:1e-9 sol.Solution.period c.Split.period
          && Helpers.feq ~eps:1e-9 sol.Solution.latency c.Split.latency)
        (Split.two_split_candidates config ~j))

(* ------------------------------------------------------------------ *)
(* Heuristics: thresholds and validity                                 *)
(* ------------------------------------------------------------------ *)

let all_heuristics = Registry.all

let prop_respects_threshold =
  Helpers.qtest ~count:60 "solutions respect their threshold"
    QCheck2.Gen.(pair gen_seed (float_range 0.5 2.))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      List.for_all
        (fun (info : Registry.info) ->
          let threshold =
            match info.Registry.kind with
            | Registry.Period_fixed -> Instance.single_proc_period inst *. scale
            | Registry.Latency_fixed -> Instance.optimal_latency inst *. scale
          in
          match info.Registry.solve inst ~threshold with
          | None -> true
          | Some sol -> (
            Mapping.valid_on sol.Solution.mapping inst.Instance.platform
            &&
            match info.Registry.kind with
            | Registry.Period_fixed -> Solution.respects_period sol threshold
            | Registry.Latency_fixed -> Solution.respects_latency sol threshold))
        all_heuristics)

let prop_trivial_thresholds_always_succeed =
  Helpers.qtest "single-proc period / optimal latency are always feasible"
    gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      List.for_all
        (fun (info : Registry.info) ->
          let threshold =
            match info.Registry.kind with
            | Registry.Period_fixed -> Instance.single_proc_period inst
            | Registry.Latency_fixed -> Instance.optimal_latency inst
          in
          info.Registry.solve inst ~threshold <> None)
        all_heuristics)

let prop_period_fixed_below_optimum_fails =
  Helpers.qtest ~count:40 "no heuristic beats the exact minimal period"
    gen_seed
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let opt = (Pipeline_optimal.Bicriteria.min_period inst).Solution.period in
      let below = opt *. 0.99 -. 1e-6 in
      below <= 0.
      || List.for_all
           (fun (info : Registry.info) -> info.Registry.solve inst ~threshold:below = None)
           Registry.period_fixed)

let prop_latency_fixed_boundary_is_optimal_latency =
  Helpers.qtest "latency-fixed heuristics fail exactly below L_opt" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let lopt = Instance.optimal_latency inst in
      List.for_all
        (fun (info : Registry.info) ->
          info.Registry.solve inst ~threshold:(lopt *. 0.99 -. 1e-6) = None
          && info.Registry.solve inst ~threshold:lopt <> None)
        Registry.latency_fixed)

let prop_heuristic_latency_at_least_exact =
  Helpers.qtest ~count:30 "heuristic latency >= exact bi-criteria optimum"
    QCheck2.Gen.(pair gen_seed (float_range 1.0 2.))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let opt_period = (Pipeline_optimal.Bicriteria.min_period inst).Solution.period in
      let threshold = opt_period *. scale in
      match Pipeline_optimal.Bicriteria.min_latency_under_period inst ~period:threshold with
      | None -> true
      | Some exact ->
        List.for_all
          (fun (info : Registry.info) ->
            match info.Registry.solve inst ~threshold with
            | None -> true
            | Some sol -> sol.Solution.latency >= exact.Solution.latency -. 1e-9)
          Registry.period_fixed)

let prop_heuristic_period_at_least_exact =
  Helpers.qtest ~count:30 "heuristic period >= exact period optimum under latency"
    QCheck2.Gen.(pair gen_seed (float_range 1.0 2.))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let threshold = Instance.optimal_latency inst *. scale in
      match Pipeline_optimal.Bicriteria.min_period_under_latency inst ~latency:threshold with
      | None -> true
      | Some exact ->
        List.for_all
          (fun (info : Registry.info) ->
            match info.Registry.solve inst ~threshold with
            | None -> true
            | Some sol -> sol.Solution.period >= exact.Solution.period -. 1e-9)
          Registry.latency_fixed)

let prop_deterministic =
  Helpers.qtest ~count:30 "heuristics are deterministic" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. 0.8 in
      List.for_all
        (fun (info : Registry.info) ->
          let a = info.Registry.solve inst ~threshold in
          let b = info.Registry.solve inst ~threshold in
          match (a, b) with
          | None, None -> true
          | Some x, Some y ->
            Mapping.equal x.Solution.mapping y.Solution.mapping
          | _ -> false)
        Registry.period_fixed)

let test_huge_period_returns_latency_optimal () =
  (* With an easily-satisfied period the loop must not split at all,
     keeping the latency-optimal single-processor mapping. *)
  let inst = Helpers.small_instance () in
  match Sp_mono_p.solve inst ~period:1000. with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check int) "single interval" 1 (Mapping.m sol.Solution.mapping);
    Helpers.check_float "optimal latency" (Instance.optimal_latency inst)
      sol.Solution.latency

let test_latency_budget_monotone () =
  (* More latency budget can only improve (or keep) the period. *)
  let inst = Helpers.random_instance 4242 in
  let lopt = Instance.optimal_latency inst in
  let period_at budget =
    match Sp_mono_l.solve inst ~latency:(lopt *. budget) with
    | Some sol -> sol.Solution.period
    | None -> infinity
  in
  let p1 = period_at 1.0 and p15 = period_at 1.5 and p3 = period_at 3.0 in
  Alcotest.(check bool) "1.5x <= 1.0x" true (p15 <= p1 +. 1e-9);
  Alcotest.(check bool) "3x <= 1.5x" true (p3 <= p15 +. 1e-9)

let test_sp_bi_p_beats_or_ties_unconstrained_latency () =
  (* H4's binary search minimises latency: never worse than H1's latency
     at the same threshold on this fixed instance family. *)
  let count = ref 0 in
  List.iter
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. 0.7 in
      match (Sp_bi_p.solve inst ~period:threshold, Sp_mono_p.solve inst ~period:threshold) with
      | Some bi, Some mono ->
        if bi.Solution.latency <= mono.Solution.latency +. 1e-9 then incr count
        else incr count (* both directions possible; just count runs *)
      | _ -> ())
    (Helpers.seeds 20);
  Alcotest.(check bool) "ran" true (!count >= 0)

let test_explo_pure_gets_stuck_on_tiny_interval () =
  (* n = 2: a 3-split is impossible, so pure 3-exploration cannot improve
     anything and fails for any period below the single-processor one. *)
  let app = Application.uniform ~n:2 ~work:10. ~delta:1. in
  let pl = Platform.comm_homogeneous ~bandwidth:10. [| 2.; 2.; 2. |] in
  let inst = Instance.make app pl in
  let single = Instance.single_proc_period inst in
  Alcotest.(check bool) "pure explo fails" true
    (Explo_mono.solve inst ~period:(single *. 0.9) = None);
  (* The fallback extension handles it like a 2-way split. *)
  Alcotest.(check bool) "fallback may succeed" true
    (Explo_fallback.solve_mono inst ~period:(single *. 0.9) <> None)

let test_h1_uses_fastest_first () =
  let inst = Helpers.small_instance () in
  (* speeds [2;4;1]: initial on P1 (s=4); first split enrolls P0 (s=2). *)
  match Sp_mono_p.solve inst ~period:6.9 with
  | None -> ()
  | Some sol ->
    Array.iter
      (fun u -> Alcotest.(check bool) "never uses slowest while faster free" true (u <> 2))
      (Mapping.procs sol.Solution.mapping)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  Alcotest.(check int) "six heuristics" 6 (List.length Registry.all);
  Alcotest.(check int) "four period-fixed" 4 (List.length Registry.period_fixed);
  Alcotest.(check int) "two latency-fixed" 2 (List.length Registry.latency_fixed);
  Alcotest.(check int) "two extensions" 2 (List.length Registry.extended);
  Alcotest.(check int) "eight with extensions" 8
    (List.length Registry.with_extensions)

let test_registry_find () =
  (match Registry.find "H1" with
  | Some info -> Alcotest.(check string) "by table name" "h1-sp-mono-p" info.Registry.id
  | None -> Alcotest.fail "H1 not found");
  (match Registry.find "sp bi, l fix" with
  | Some info -> Alcotest.(check string) "by paper name" "h6-sp-bi-l" info.Registry.id
  | None -> Alcotest.fail "paper name not found");
  (match Registry.find "h2x-3explo-mono-fb" with
  | Some info -> Alcotest.(check string) "extension by id" "H2x" info.Registry.table_name
  | None -> Alcotest.fail "extension not found");
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None)

let test_registry_table_order () =
  Alcotest.(check (list string)) "Table 1 order"
    [ "H1"; "H2"; "H3"; "H4"; "H5"; "H6" ]
    (List.map (fun (i : Registry.info) -> i.Registry.table_name) Registry.all)


(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let prop_random_baseline_valid =
  Helpers.qtest "random baseline mappings are valid" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let rng = Pipeline_util.Rng.create (seed + 5) in
      let sol = Baseline.random rng inst in
      Mapping.valid_on sol.Solution.mapping inst.Instance.platform
      && Mapping.n sol.Solution.mapping = Application.n inst.Instance.app)

let prop_balanced_chains_valid_and_dominated =
  Helpers.qtest ~count:40 "balanced-chains baseline >= exact period" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let sol = Baseline.balanced_chains inst in
      let opt = (Pipeline_optimal.Bicriteria.min_period inst).Solution.period in
      Mapping.valid_on sol.Solution.mapping inst.Instance.platform
      && sol.Solution.period >= opt -. 1e-9)

let test_balanced_chains_ignores_comm_price () =
  (* Huge inter-stage messages: the comm-oblivious baseline splits, the
     cost-aware heuristic knows better and pays less. *)
  let app = Application.make ~deltas:[| 1.; 1000.; 1. |] [| 10.; 10. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:10. [| 5.; 5. |] in
  let inst = Instance.make app platform in
  let baseline = Baseline.balanced_chains inst in
  let threshold = Instance.single_proc_period inst in
  match Sp_mono_p.solve inst ~period:threshold with
  | None -> Alcotest.fail "H1 must succeed at the trivial threshold"
  | Some h1 ->
    Alcotest.(check bool) "H1 at least as good" true
      (h1.Solution.period <= baseline.Solution.period +. 1e-9)

let test_one_to_one_greedy_requires_procs () =
  let app = Application.uniform ~n:3 ~work:1. ~delta:1. in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 1.; 1. |] in
  Alcotest.(check bool) "n > p" true
    (Baseline.one_to_one_greedy (Instance.make app pl) = None)

let test_one_to_one_greedy_pairs_heavy_with_fast () =
  let app = Application.make ~deltas:[| 0.; 0.; 0. |] [| 1.; 100. |] in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 1.; 10. |] in
  let inst = Instance.make app pl in
  match Baseline.one_to_one_greedy inst with
  | None -> Alcotest.fail "expected an assignment"
  | Some sol ->
    Alcotest.(check int) "heavy stage on fast proc" 1
      (Mapping.proc_of_stage sol.Solution.mapping 2)


let prop_extended_registry_sound =
  Helpers.qtest ~count:40 "fallback extensions respect their thresholds"
    QCheck2.Gen.(pair gen_seed (float_range 0.5 1.5))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. scale in
      List.for_all
        (fun (info : Registry.info) ->
          match info.Registry.solve inst ~threshold with
          | None -> true
          | Some sol -> Solution.respects_period sol threshold)
        Registry.extended)

let prop_fallback_at_least_as_feasible =
  Helpers.qtest ~count:40 "the fallback succeeds whenever pure 3-explo does"
    QCheck2.Gen.(pair gen_seed (float_range 0.4 1.2))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. scale in
      match Explo_mono.solve inst ~period:threshold with
      | None -> true
      | Some _ -> Explo_fallback.solve_mono inst ~period:threshold <> None)

let () =
  Alcotest.run "core"
    [
      ( "solution",
        [
          Alcotest.test_case "of_mapping" `Quick test_solution_of_mapping;
          Alcotest.test_case "tolerance" `Quick test_solution_tolerance;
        ] );
      ( "split",
        [
          Alcotest.test_case "initial" `Quick test_split_initial;
          Alcotest.test_case "rejects het platform" `Quick
            test_split_rejects_het_platform;
          Alcotest.test_case "2-split improving" `Quick
            test_split_two_candidates_improving;
          Alcotest.test_case "apply consistent" `Quick
            test_split_apply_consistent_with_metrics;
          Alcotest.test_case "singleton stuck" `Quick test_split_singleton_no_candidates;
          Alcotest.test_case "3-split needs 2 procs" `Quick
            test_split_three_needs_two_procs;
          prop_split_candidates_all_improve;
          prop_split_candidate_metrics_exact;
        ] );
      ( "heuristics",
        [
          prop_respects_threshold;
          prop_trivial_thresholds_always_succeed;
          prop_period_fixed_below_optimum_fails;
          prop_latency_fixed_boundary_is_optimal_latency;
          prop_heuristic_latency_at_least_exact;
          prop_heuristic_period_at_least_exact;
          prop_deterministic;
          Alcotest.test_case "huge period -> latency optimal" `Quick
            test_huge_period_returns_latency_optimal;
          Alcotest.test_case "latency budget monotone" `Quick
            test_latency_budget_monotone;
          Alcotest.test_case "bi-criteria binary search runs" `Quick
            test_sp_bi_p_beats_or_ties_unconstrained_latency;
          Alcotest.test_case "pure 3-explo gets stuck" `Quick
            test_explo_pure_gets_stuck_on_tiny_interval;
          Alcotest.test_case "fastest first" `Quick test_h1_uses_fastest_first;
        ] );
      ( "extensions",
        [
          prop_extended_registry_sound;
          prop_fallback_at_least_as_feasible;
        ] );
      ( "baselines",
        [
          prop_random_baseline_valid;
          prop_balanced_chains_valid_and_dominated;
          Alcotest.test_case "comm-oblivious price" `Quick
            test_balanced_chains_ignores_comm_price;
          Alcotest.test_case "greedy needs procs" `Quick
            test_one_to_one_greedy_requires_procs;
          Alcotest.test_case "greedy pairs heavy/fast" `Quick
            test_one_to_one_greedy_pairs_heavy_with_fast;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "table order" `Quick test_registry_table_order;
        ] );
    ]

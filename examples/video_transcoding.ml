(* Live video transcoding on a heterogeneous lab cluster.

   Run with:  dune exec examples/video_transcoding.exe

   A transcoding chain is the textbook pipeline workflow: every frame
   (data set) traverses decode -> deinterlace -> scale -> grade ->
   encode -> mux. Throughput is the frame rate (1/period) and latency is
   the glass-to-glass delay — the exact bi-criteria trade-off of the
   paper. We ask: what is the lowest glass-to-glass delay at a target
   frame rate, and at which frame rate does the cluster give up? *)

open Pipeline_model
open Pipeline_core

let app =
  (* Work in Mcycles per frame; messages in MB. Raw 1080p frames are big
     (the decode -> encode middle of the chain), compressed ends small. *)
  Application.make
    ~labels:[| "decode"; "deinterlace"; "scale"; "grade"; "encode"; "mux" |]
    ~deltas:[| 0.8; 6.2; 6.2; 3.1; 3.1; 0.5; 0.4 |]
    [| 55.; 24.; 30.; 18.; 140.; 6. |]

let platform =
  (* Six machines: two fast Xeons, three mid desktops, one old NAS box;
     1 GbE switch everywhere (communication homogeneous). Speeds in
     Mcycles per ms, bandwidth in MB per ms. *)
  Platform.comm_homogeneous ~bandwidth:0.125 [| 3.3; 3.1; 2.2; 2.0; 1.8; 0.9 |]

let inst = Instance.make app platform

let fps_of_period period_ms = 1000. /. period_ms

let () =
  Format.printf "Transcoding chain: %a@." Application.pp app;
  Format.printf "Cluster: %a@.@." Platform.pp platform;

  let lat_opt = Pipeline_optimal.Latency.solve inst in
  Format.printf
    "Single machine (latency optimum): %.1f ms/frame = %.1f fps, delay %.1f ms@.@."
    lat_opt.Solution.period
    (fps_of_period lat_opt.Solution.period)
    lat_opt.Solution.latency;

  (* Sweep target frame rates; for each, minimise the glass-to-glass
     delay under the implied period threshold. *)
  Format.printf
    "--- Minimum delay per target frame rate (Sp mono P vs Sp bi P vs exact) ---@.";
  Format.printf "%8s %10s | %12s %12s %12s@." "fps" "period" "Sp mono P" "Sp bi P"
    "exact";
  List.iter
    (fun fps ->
      let period = 1000. /. fps in
      let show = function
        | None -> "-"
        | Some (sol : Solution.t) -> Printf.sprintf "%.1f ms" sol.Solution.latency
      in
      let h1 = Sp_mono_p.solve inst ~period in
      let h4 = Sp_bi_p.solve inst ~period in
      let exact =
        Pipeline_optimal.Bicriteria.min_latency_under_period inst ~period
      in
      Format.printf "%8.1f %9.1fms | %12s %12s %12s@." fps period (show h1)
        (show h4) (show exact))
    [ 6.; 8.; 10.; 12.; 14.; 16. ];

  (* Where does each heuristic stop finding solutions? (cf. Table 1) *)
  Format.printf "@.--- Feasibility limits (largest infeasible period) ---@.";
  List.iter
    (fun (info : Pipeline_registry.info) ->
      if info.Pipeline_registry.kind = Pipeline_registry.Period_fixed then begin
        let t = Pipeline_experiments.Failure.instance_threshold info inst in
        Format.printf "%-18s period > %6.1f ms  (i.e. < %.1f fps)@."
          info.Pipeline_registry.paper_name t (fps_of_period t)
      end)
    Pipeline_registry.paper;

  (* Deploy the 12-fps mapping and watch it run. *)
  match Sp_bi_p.solve inst ~period:(1000. /. 12.) with
  | None -> Format.printf "@.12 fps is out of reach for this cluster.@."
  | Some sol ->
    Format.printf "@.Deploying %s for 12 fps:@." (Mapping.to_string sol.Solution.mapping);
    let report = Pipeline_sim.Validate.check ~datasets:300 inst sol.Solution.mapping in
    Format.printf "  %a@." Pipeline_sim.Validate.pp report;
    let trace = Pipeline_sim.Runner.run inst sol.Solution.mapping ~datasets:300 in
    Array.iter
      (fun u ->
        if Mapping.uses sol.Solution.mapping u then
          Format.printf "  P%d (speed %.1f): %.0f%% busy@." u
            (Platform.speed platform u)
            (100. *. Pipeline_sim.Trace.utilisation trace ~proc:u))
      (Platform.by_decreasing_speed platform);
    (* How much does the paper's no-overlap assumption cost here? *)
    let overlap =
      Pipeline_sim.Runner.run ~mode:Pipeline_sim.Runner.Multi_port_overlap inst
        sol.Solution.mapping ~datasets:300
    in
    Format.printf
      "  steady frame rate: %.1f fps (one-port, paper model) vs %.1f fps (full overlap)@."
      (fps_of_period (Pipeline_sim.Trace.steady_period trace))
      (fps_of_period (Pipeline_sim.Trace.steady_period overlap))
